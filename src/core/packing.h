// Gradient packing (paper §V-B): after a synchronization round, the agreed
// ready gradients are packed into all-reduce units of the tuned granularity.
// Small tensors are merged into one unit; tensors larger than the granularity
// are split across several units. Packing follows gradient-id order, so all
// workers implicitly agree on the layout without further coordination.
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "common/logging.h"
#include "compress/codec.h"
#include "core/registry.h"

namespace aiacc::core {

/// A contiguous piece of one gradient inside an all-reduce unit.
struct UnitSegment {
  int gradient_id = 0;
  std::size_t offset = 0;  // byte offset inside the gradient tensor
  std::size_t length = 0;  // bytes

  friend bool operator==(const UnitSegment&, const UnitSegment&) = default;
};

/// One all-reduce unit: dispatched to one communication stream.
struct AllReduceUnit {
  std::uint64_t unit_id = 0;
  std::vector<UnitSegment> segments;
  /// Ring pipeline depth every rank must use for this unit's all-reduce
  /// (0 = the engine's configured default). Stamped by the sync protocol
  /// from the *agreed* degradation level — ranks running one unit's ring at
  /// different depths would exchange mismatched slice counts and abort, so
  /// a per-rank controller value must never be used here directly.
  int pipeline_depth = 0;
  /// Wire codec every rank must use for this unit's collective. Like
  /// pipeline_depth it is derived from agreed state only (the shared config
  /// resolved per gradient name in registration order), so all ranks stamp
  /// the same codec on the same unit. Gradients with different codecs never
  /// share a unit — the packer closes the open unit on a codec change.
  compress::CodecSpec codec{};
  /// Criticality priority: the smallest gradient id in the unit, i.e. the
  /// tensor the *next forward pass* consumes earliest (ids are assigned in
  /// name-sorted registration order, identical on every rank). Lower =
  /// more urgent. The ready-set scheduler (core/scheduler.h) dispatches by
  /// this; -1 = unstamped (scheduler derives it from the segments).
  int priority = -1;

  [[nodiscard]] std::size_t TotalBytes() const noexcept {
    std::size_t n = 0;
    for (const UnitSegment& s : segments) n += s.length;
    return n;
  }
};

class PackingPlanner {
 public:
  explicit PackingPlanner(std::size_t granularity_bytes)
      : granularity_(granularity_bytes) {
    AIACC_CHECK(granularity_ > 0);
  }

  /// Pack `ready_ids` (ascending gradient ids) into units of ~granularity
  /// bytes. Every byte of every ready gradient appears in exactly one unit;
  /// units are filled greedily in id order; a unit never exceeds the
  /// granularity unless a single segment's minimum slice would (slices are
  /// kept element-aligned via `alignment`, default fp32).
  [[nodiscard]] std::vector<AllReduceUnit> Pack(
      const GradientRegistry& registry, const std::vector<int>& ready_ids,
      std::size_t alignment = 4);

  [[nodiscard]] std::size_t granularity() const noexcept {
    return granularity_;
  }

 private:
  std::size_t granularity_;
  std::uint64_t next_unit_id_ = 1;
};

/// Streaming variant used by the engines: gradients agreed ready by
/// successive synchronization rounds are appended to a byte-stream; complete
/// units of exactly the granularity are carved off as they fill, and the
/// trailing partial unit is only emitted on Flush() (end of backward). This
/// is how Horovod's fusion buffer and AIACC's all-reduce units behave —
/// packing does not fragment at sync-round boundaries.
class StreamingPacker {
 public:
  explicit StreamingPacker(std::size_t granularity_bytes,
                           std::size_t alignment = 4)
      : granularity_(granularity_bytes), alignment_(alignment) {
    AIACC_CHECK(granularity_ > 0);
    AIACC_CHECK(alignment_ > 0);
  }

  /// Append a ready gradient (in agreement order). `codec` is the wire
  /// codec this gradient's collective must use; a gradient whose codec
  /// differs from the open unit's closes that unit first, so one unit is
  /// always encoded uniformly.
  void Add(int gradient_id, std::size_t bytes,
           compress::CodecSpec codec = compress::CodecSpec{});

  /// Close the current partial unit (if any) so it becomes ready.
  void Flush();

  /// Take the next complete unit, if one is ready.
  [[nodiscard]] bool HasReadyUnit() const noexcept { return !ready_.empty(); }
  AllReduceUnit PopReadyUnit();
  [[nodiscard]] std::size_t ReadyUnits() const noexcept {
    return ready_.size();
  }
  /// Bytes buffered in the open (partial) unit.
  [[nodiscard]] std::size_t PendingBytes() const noexcept {
    return current_bytes_;
  }

  void Reset();

 private:
  void CloseCurrent();

  std::size_t granularity_;
  std::size_t alignment_;
  std::uint64_t next_unit_id_ = 1;
  AllReduceUnit current_;
  std::size_t current_bytes_ = 0;
  std::deque<AllReduceUnit> ready_;  // FIFO (front = oldest)
};

/// Gather the unit's bytes from per-gradient buffers into one contiguous
/// staging buffer (and the inverse). These run on real data in the threaded
/// backend and in numeric tests; `gradient_data[id]` is the flat byte view
/// of gradient `id`.
void GatherUnit(const AllReduceUnit& unit,
                const std::vector<std::span<const std::byte>>& gradient_data,
                std::span<std::byte> staging);
void ScatterUnit(const AllReduceUnit& unit,
                 std::span<const std::byte> staging,
                 const std::vector<std::span<std::byte>>& gradient_data);

}  // namespace aiacc::core
