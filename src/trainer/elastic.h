// Elastic and fault-tolerant training simulation (paper §IV "Other features
// and optimizations"): AIACC-Training restarts from the last checkpoint on
// node failure and propagates training parameters into newly added
// computing nodes. This module simulates a full training run with periodic
// checkpointing, a mid-run node failure, instance replacement, and the
// parameter-broadcast rejoin — producing a timeline and the recovery
// overhead breakdown.
#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "net/topology.h"

namespace aiacc::trainer {

/// A gray failure: the inter-host links lose bandwidth for a window of
/// iterations (flapping NIC, congested uplink, throttled neighbor) without
/// any node actually dying. [from_iteration, to_iteration) in completed-
/// iteration space.
struct LinkFlap {
  int from_iteration = 0;
  int to_iteration = 0;
  /// Capacity multiplier while the flap is active (0 < factor <= 1 for a
  /// degradation). Overlapping flaps compose multiplicatively.
  double bandwidth_factor = 0.5;
};

struct ElasticSpec {
  std::string model_name = "resnet50";
  net::Topology topology;
  int batch_per_gpu = 64;
  core::CommConfig config;

  int total_iterations = 60;
  /// Checkpoint every k iterations (0 disables checkpointing — after a
  /// failure training restarts from scratch).
  int checkpoint_interval = 10;
  /// Iteration during which a node fails (-1 = no failure).
  int fail_at_iteration = -1;
  /// Wall-clock to provision a replacement instance (cloud control plane).
  double replacement_delay = 30.0;
  /// Sustained checkpoint-write rate to remote storage (bytes/sec). Writes
  /// block the next iteration (synchronous checkpointing).
  double checkpoint_write_rate = 2e9;
  /// Bandwidth degradation windows (gray failures) applied to every host's
  /// egress+ingress links.
  std::vector<LinkFlap> flaps;
};

struct ElasticEvent {
  double time = 0.0;
  std::string what;
};

struct ElasticReport {
  double total_time = 0.0;
  /// Same run with no failure and no checkpointing.
  double ideal_time = 0.0;
  double checkpoint_overhead = 0.0;
  double replay_overhead = 0.0;     // re-running lost iterations
  double replacement_overhead = 0.0;  // instance provisioning wait
  double rejoin_broadcast_time = 0.0; // parameter propagation to the joiner
  double degradation_overhead = 0.0;  // extra time from link flaps
  int iterations_replayed = 0;
  int checkpoints_written = 0;
  std::vector<ElasticEvent> timeline;

  [[nodiscard]] double RecoveryOverhead() const noexcept {
    return total_time - ideal_time;
  }
};

/// Simulate the run described by `spec` and return the timeline/overheads.
ElasticReport SimulateElasticTraining(const ElasticSpec& spec);

}  // namespace aiacc::trainer
