// Failure recovery for the *threaded* AIACC runtime — the real-concurrency
// twin of the analytic SimulateElasticTraining (trainer/elastic.h).
//
// TrainWithRecovery drives a data-parallel MLP run through
// ThreadedAiaccEngine and survives rank failures end to end:
//
//   HEALTHY ──(heartbeat miss / collective deadline)──▶ ABORTED
//   ABORTED ──SuspectedRanks()──▶ REBUILD engine over the survivors
//   REBUILD ──▶ RESTORE parameters from the last checkpoint snapshot
//   RESTORE ──▶ REPLAY the lost iterations, then continue to completion
//
// Exactness: training is full-batch and deterministic, and the dataset is
// sharded equally, so the mean of per-rank shard gradients equals the
// full-batch gradient for *any* surviving world size that divides the sample
// count. Recovery therefore lands back on the sequential trajectory — the
// chaos-matrix test requires the recovered parameters to match fault-free
// training to float tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/threaded_engine.h"

namespace aiacc::trainer {

struct RecoverySpec {
  std::vector<int> layer_sizes = {6, 12, 2};
  std::uint64_t model_seed = 42;
  /// Must stay divisible by every world size the run can shrink to.
  int num_samples = 24;
  std::uint64_t data_seed = 7;
  int world_size = 4;
  int total_iterations = 10;
  float learning_rate = 0.1f;
  core::CommConfig comm;
  core::FailureConfig failure;
  /// Snapshot parameters every this many iterations (and at iteration 0).
  int checkpoint_interval = 2;
  /// Give up after this many engine rebuilds.
  int max_recoveries = 2;
  /// Give up when fewer survivors than this remain.
  int min_world_size = 2;
};

struct RecoveryReport {
  Status final_status;
  /// Engine runs attempted (1 = no failure).
  int attempts = 0;
  int recoveries = 0;
  /// Iterations re-run because they post-dated the restored checkpoint.
  int iterations_replayed = 0;
  int final_world_size = 0;
  /// Original rank ids that were declared failed, in detection order.
  std::vector<int> failed_ranks;
  /// Replica-0 parameters after the final iteration (empty on failure).
  std::vector<std::vector<float>> final_parameters;
  /// Human-readable recovery log (one line per state transition).
  std::vector<std::string> timeline;
};

RecoveryReport TrainWithRecovery(const RecoverySpec& spec);

}  // namespace aiacc::trainer
