#include "trainer/harness.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "dnn/zoo.h"

namespace aiacc::trainer {

std::string ToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAiacc: return "aiacc";
    case EngineKind::kAiaccAutotuned: return "aiacc-autotuned";
    case EngineKind::kHorovod: return "horovod";
    case EngineKind::kPytorchDdp: return "pytorch-ddp";
    case EngineKind::kByteps: return "byteps";
    case EngineKind::kMxnetKvstore: return "mxnet-kvstore";
  }
  return "?";
}

net::Topology MakeTopology(int gpus, int gpus_per_host,
                           net::TransportKind transport) {
  AIACC_CHECK(gpus >= 1);
  net::Topology topo;
  topo.inter_node = transport;
  if (gpus <= gpus_per_host) {
    topo.num_hosts = 1;
    topo.gpus_per_host = gpus;
  } else {
    AIACC_CHECK(gpus % gpus_per_host == 0);
    topo.num_hosts = gpus / gpus_per_host;
    topo.gpus_per_host = gpus_per_host;
  }
  return topo;
}

namespace {

/// Owns the full simulated deployment for one run.
struct Deployment {
  dnn::ModelDescriptor model;
  sim::Engine sim;
  net::CloudFabric fabric;
  collective::SimCollectives collectives;
  std::unique_ptr<core::DdlEngine> engine;

  Deployment(const RunSpec& spec, std::uint64_t jitter_seed = 1)
      : model(dnn::MakeModelByName(spec.model_name)),
        fabric(sim, spec.topology, spec.fabric_params),
        collectives(fabric) {
    // Foreign-tenant congestion on host 0's NIC: TCP shares links per
    // *connection*, so a tenant driving `load` of the NIC holds many
    // connections — modeled as 20*load flows per direction, each capped at
    // its proportional slice. Under max-min fairness they collectively
    // squeeze the training streams to roughly (1 - load) of the link.
    if (spec.background_load > 0.0 && spec.topology.num_hosts > 1) {
      const int connections =
          std::max(1, static_cast<int>(spec.background_load * 20.0));
      const double per_connection_cap =
          spec.background_load * fabric.NicBandwidth() / connections;
      for (net::LinkIndex link :
           {fabric.EgressLink(0), fabric.IngressLink(0)}) {
        for (int c = 0; c < connections; ++c) {
          net::Network::FlowSpec flow;
          flow.path = {link};
          flow.bytes = 1e18;  // effectively infinite
          flow.rate_cap = per_connection_cap;
          fabric.network().StartFlow(std::move(flow));
        }
      }
    }

    core::WorkloadSetup setup;
    setup.fabric = &fabric;
    setup.collectives = &collectives;
    setup.gpu = gpu::GpuModel(spec.gpu_params);
    setup.model = &model;
    setup.batch_per_gpu = spec.batch_per_gpu;
    setup.wire_dtype = spec.wire_dtype;
    setup.cpu_optimizer_offload = spec.cpu_optimizer_offload;
    setup.compute_jitter_sigma = spec.compute_jitter_sigma;
    setup.jitter_seed = jitter_seed;
    switch (spec.engine) {
      case EngineKind::kAiacc:
      case EngineKind::kAiaccAutotuned:
        engine = std::make_unique<core::AiaccEngine>(setup, spec.aiacc_config);
        break;
      case EngineKind::kHorovod:
        engine = std::make_unique<baselines::HorovodLikeEngine>(setup);
        break;
      case EngineKind::kPytorchDdp:
        engine = std::make_unique<baselines::DdpLikeEngine>(setup);
        break;
      case EngineKind::kByteps:
        engine = baselines::MakeBytePsEngine(setup);
        break;
      case EngineKind::kMxnetKvstore:
        engine = baselines::MakeMxnetKvStoreEngine(setup);
        break;
    }
  }
};

}  // namespace

namespace {
RunResult RunOnce(const RunSpec& spec, std::uint64_t jitter_seed);
}  // namespace

RunResult Run(const RunSpec& spec) {
  AIACC_CHECK(spec.repeats >= 1);
  if (spec.repeats == 1) return RunOnce(spec, 1);
  // §VII-D methodology: geometric mean over independent repeats.
  std::vector<double> throughputs;
  RunResult last;
  for (int r = 0; r < spec.repeats; ++r) {
    last = RunOnce(spec, static_cast<std::uint64_t>(r + 1));
    throughputs.push_back(last.throughput);
  }
  last.throughput = GeometricMean(throughputs);
  last.per_gpu_throughput = last.throughput / spec.topology.WorldSize();
  return last;
}

namespace {
RunResult RunOnce(const RunSpec& spec, std::uint64_t jitter_seed) {
  Deployment dep(spec, jitter_seed);
  RunResult result;
  result.chosen_config = spec.aiacc_config;

  if (spec.engine == EngineKind::kAiaccAutotuned) {
    auto* aiacc = dynamic_cast<core::AiaccEngine*>(dep.engine.get());
    AIACC_CHECK(aiacc != nullptr);
    const int world = spec.topology.WorldSize();
    const double samples_per_iter =
        static_cast<double>(spec.batch_per_gpu) * world;
    autotune::AutotuneOptions options;
    options.solver.budget = spec.tune_budget;
    options.cache = spec.tuning_cache;
    options.model = &dep.model;
    options.topology = spec.topology;
    // Warm-up objective: one *real* training iteration under the candidate
    // configuration; its gradients still update the model (no cycles
    // wasted). Throughput of that single iteration is the score.
    autotune::Objective objective =
        [&](const core::CommConfig& cfg) -> double {
      aiacc->SetConfig(cfg);
      const auto stats = aiacc->RunIterations(1);
      return samples_per_iter / stats.front().duration;
    };
    result.tuning = autotune::Tune(objective, options);
    result.chosen_config = result.tuning->best_config;
    aiacc->SetConfig(result.chosen_config);
  }

  (void)dep.engine->RunIterations(spec.warmup_iterations);
  const double t0 = dep.sim.Now();
  const auto stats = dep.engine->RunIterations(spec.measure_iterations);
  const double elapsed = dep.sim.Now() - t0;
  AIACC_CHECK(elapsed > 0.0);

  const int world = spec.topology.WorldSize();
  const double samples = static_cast<double>(spec.batch_per_gpu) * world *
                         spec.measure_iterations;
  result.throughput = samples / elapsed;
  result.per_gpu_throughput = result.throughput / world;
  result.iteration_time = elapsed / spec.measure_iterations;
  result.last_iteration = stats.back();
  return result;
}
}  // namespace

std::vector<ScalingPoint> ScalingSweep(RunSpec spec,
                                       const std::vector<int>& gpu_counts) {
  // Single-GPU reference for the scaling-efficiency denominator (same model
  // and batch, no communication).
  RunSpec single = spec;
  single.topology = MakeTopology(1, spec.topology.gpus_per_host,
                                 spec.topology.inter_node);
  single.engine = EngineKind::kAiacc;  // engine is irrelevant at world=1
  const double single_gpu = Run(single).throughput;

  std::vector<ScalingPoint> points;
  for (int gpus : gpu_counts) {
    RunSpec point_spec = spec;
    point_spec.topology = MakeTopology(gpus, spec.topology.gpus_per_host,
                                       spec.topology.inter_node);
    const RunResult r = Run(point_spec);
    ScalingPoint p;
    p.gpus = gpus;
    p.throughput = r.throughput;
    p.scaling_efficiency = r.throughput / (single_gpu * gpus);
    points.push_back(p);
  }
  return points;
}

double RunHybrid(const HybridSpec& spec) {
  // Deployment: replicas of `model_shards` consecutive GPUs; stage s of
  // replica r sits on rank r*shards + s.
  const int world = spec.topology.WorldSize();
  AIACC_CHECK(world % spec.model_shards == 0);
  const int replicas = world / spec.model_shards;
  const int shards = spec.model_shards;

  dnn::ModelDescriptor model = dnn::MakeModelByName(spec.model_name);
  sim::Engine sim;
  net::CloudFabric fabric(sim, spec.topology, spec.fabric_params);
  collective::SimCollectives collectives(fabric);
  gpu::GpuModel gpu(spec.gpu_params);

  // Per-iteration compute: the replica's batch flows through a pipeline of
  // `shards` stages; with k microbatches the bubble adds (shards-1)/k of the
  // per-stage time.
  const auto profile = model.Profile(gpu, spec.batch_per_replica);
  constexpr double kMicrobatches = 4.0;
  const double stage_compute =
      (profile.forward_time + profile.backward_time) / shards;
  const double compute_time =
      (profile.forward_time + profile.backward_time) +
      stage_compute * (shards - 1) / kMicrobatches;

  // Activation exchange between adjacent stages (both directions over the
  // iteration); consecutive ranks share a host whenever gpus_per_host >=
  // shards, so this typically rides NVLink.
  const double act_bytes = 1.0e6 * spec.batch_per_replica * 2.0;

  // Gradient communication: shard s all-reduces S/shards bytes across its
  // replica group {r*shards + s : r}.
  const double shard_bytes =
      static_cast<double>(model.TotalParameterBytes()) / shards;

  double total = 0.0;
  const int iters = spec.measure_iterations;
  for (int it = 0; it < iters; ++it) {
    const double start = sim.Now();
    int remaining = shards + (shards > 1 ? shards - 1 : 0);
    bool finished = false;
    auto on_piece_done = [&](double) {
      if (--remaining == 0) finished = true;
    };
    // Serialized per-key exchange queue for the KVStore baseline.
    std::deque<std::vector<int>> kv_queue;
    std::function<void()> kv_pump = [&] {
      if (kv_queue.empty()) return;
      std::vector<int> group = std::move(kv_queue.front());
      kv_queue.pop_front();
      collective::SimCollectives::Unit unit;
      unit.bytes_per_rank = 2.0 * shard_bytes;
      unit.ranks = std::move(group);
      unit.algorithm = collective::Algorithm::kRing;
      unit.on_done = [&](double t) {
        on_piece_done(t);
        kv_pump();
      };
      collectives.Start(std::move(unit));
    };
    // Kick gradient units after compute; activations modeled as concurrent
    // intra-replica flows during compute.
    sim.ScheduleAfter(compute_time, [&] {
      for (int s = 0; s < shards; ++s) {
        std::vector<int> group;
        for (int r = 0; r < replicas; ++r) group.push_back(r * shards + s);
        if (spec.use_aiacc) {
          // Multi-stream: split the shard into `num_streams` concurrent
          // units.
          const int streams = std::max(1, spec.aiacc_config.num_streams);
          // One completion per shard: count sub-units internally.
          auto pending = std::make_shared<int>(streams);
          for (int u = 0; u < streams; ++u) {
            collective::SimCollectives::Unit unit;
            unit.bytes_per_rank = shard_bytes / streams;
            unit.ranks = group;
            unit.algorithm = spec.aiacc_config.algorithm;
            unit.on_done = [&, pending](double t) {
              if (--*pending == 0) on_piece_done(t);
            };
            collectives.Start(std::move(unit));
          }
        } else {
          // KVStore-style PS per shard: push+pull moves twice the ring
          // volume at the single-stream rate, and the KVStore engine
          // serializes per-key (per-shard) exchanges instead of running
          // them concurrently.
          kv_queue.push_back(group);
        }
      }
      if (!spec.use_aiacc) kv_pump();
    });
    // Activation traffic between adjacent stages of every replica.
    if (shards > 1) {
      for (int s = 0; s + 1 < shards; ++s) {
        // All replicas exchange concurrently; model one aggregate flow per
        // stage boundary (loads NVLink/NICs of all hosts involved).
        net::Network::FlowSpec flow;
        bool multi_host = false;
        for (int r = 0; r < replicas; ++r) {
          const int a = r * shards + s;
          const int b = a + 1;
          for (net::LinkIndex l : fabric.PathBetween(a, b)) {
            if (std::find(flow.path.begin(), flow.path.end(), l) ==
                flow.path.end()) {
              flow.path.push_back(l);
            }
          }
          multi_host |= !spec.topology.SameHost(a, b);
        }
        flow.bytes = act_bytes;
        flow.rate_cap = multi_host ? fabric.InterNodeStreamCap()
                                   : spec.fabric_params.nvlink_bandwidth;
        flow.start_delay = multi_host ? fabric.InterNodeHopCost()
                                      : fabric.NvlinkHopCost();
        flow.on_complete = [&] { on_piece_done(sim.Now()); };
        fabric.network().StartFlow(std::move(flow));
      }
    }
    while (!finished && sim.Step()) {
    }
    AIACC_CHECK(finished);
    total += sim.Now() - start;
  }
  const double samples =
      static_cast<double>(spec.batch_per_replica) * replicas * iters;
  return samples / total;
}

}  // namespace aiacc::trainer
