#include "trainer/elastic.h"

#include <map>
#include <memory>

#include "collective/simulated.h"
#include "common/logging.h"
#include "core/aiacc_engine.h"
#include "dnn/zoo.h"

namespace aiacc::trainer {
namespace {

/// One engine deployment reused for the whole simulation (the topology is
/// unchanged after replacement: the new node takes the failed node's slot).
struct ElasticDeployment {
  dnn::ModelDescriptor model;
  sim::Engine sim;
  net::CloudFabric fabric;
  collective::SimCollectives collectives;
  core::AiaccEngine engine;

  ElasticDeployment(const ElasticSpec& spec)
      : model(dnn::MakeModelByName(spec.model_name)),
        fabric(sim, spec.topology, net::FabricParams{}),
        collectives(fabric),
        engine(
            [&] {
              core::WorkloadSetup setup;
              setup.fabric = &fabric;
              setup.collectives = &collectives;
              setup.model = &model;
              setup.batch_per_gpu = spec.batch_per_gpu;
              return setup;
            }(),
            spec.config) {}

  double RunOneIteration() {
    const auto stats = engine.RunIterations(1);
    return stats.front().duration;
  }

  /// Iteration time with every host's egress+ingress capacity scaled by
  /// `factor` (the simulator is idle between iterations, so the capacity
  /// swap is safe and fully restored afterwards).
  double RunOneDegradedIteration(const ElasticSpec& spec, double factor) {
    net::Network& nw = fabric.network();
    const int hosts = spec.topology.num_hosts;
    for (int h = 0; h < hosts; ++h) {
      nw.SetLinkCapacity(fabric.EgressLink(h),
                         nw.LinkCapacity(fabric.EgressLink(h)) * factor);
      nw.SetLinkCapacity(fabric.IngressLink(h),
                         nw.LinkCapacity(fabric.IngressLink(h)) * factor);
    }
    const double duration = RunOneIteration();
    for (int h = 0; h < hosts; ++h) {
      nw.SetLinkCapacity(fabric.EgressLink(h),
                         nw.LinkCapacity(fabric.EgressLink(h)) / factor);
      nw.SetLinkCapacity(fabric.IngressLink(h),
                         nw.LinkCapacity(fabric.IngressLink(h)) / factor);
    }
    return duration;
  }
};

}  // namespace

ElasticReport SimulateElasticTraining(const ElasticSpec& spec) {
  AIACC_CHECK(spec.total_iterations > 0);
  for (const LinkFlap& flap : spec.flaps) {
    AIACC_CHECK(flap.bandwidth_factor > 0.0);
    AIACC_CHECK(flap.from_iteration >= 0);
    AIACC_CHECK(flap.to_iteration > flap.from_iteration);
  }
  ElasticReport report;
  ElasticDeployment dep(spec);

  auto log = [&](double time, std::string what) {
    report.timeline.push_back(ElasticEvent{time, std::move(what)});
  };

  // Ideal reference: one measured iteration (the simulator is
  // deterministic, so every healthy iteration costs the same).
  const double iter_time = dep.RunOneIteration();
  report.ideal_time = iter_time * spec.total_iterations;

  // Combined bandwidth factor while iteration `iter` runs; 1.0 = healthy.
  auto factor_at = [&](int iter) {
    double f = 1.0;
    for (const LinkFlap& flap : spec.flaps) {
      if (iter >= flap.from_iteration && iter < flap.to_iteration) {
        f *= flap.bandwidth_factor;
      }
    }
    return f;
  };
  // Degraded iterations are measured once per distinct factor (the
  // simulator is deterministic, so one measurement is exact).
  std::map<double, double> degraded_iter_time;
  auto iter_time_at = [&](double factor) {
    if (factor == 1.0) return iter_time;
    auto it = degraded_iter_time.find(factor);
    if (it == degraded_iter_time.end()) {
      it = degraded_iter_time
               .emplace(factor, dep.RunOneDegradedIteration(spec, factor))
               .first;
    }
    return it->second;
  };

  const double ckpt_time =
      spec.checkpoint_interval > 0
          ? static_cast<double>(dep.model.TotalParameterBytes()) /
                spec.checkpoint_write_rate
          : 0.0;

  double now = 0.0;
  int completed = 0;          // iterations whose results are durable-ish
  int last_checkpoint = 0;    // iteration count captured by the checkpoint
  bool failure_pending = spec.fail_at_iteration >= 0;

  log(now, "training starts (" + std::to_string(spec.topology.WorldSize()) +
               " GPUs, " + spec.model_name + ")");

  while (completed < spec.total_iterations) {
    if (failure_pending && completed == spec.fail_at_iteration) {
      // The node dies mid-iteration: the in-flight iteration is lost and
      // everything after the last checkpoint must be replayed.
      failure_pending = false;
      now += 0.5 * iter_time;  // partial iteration wasted
      log(now, "NODE FAILURE during iteration " + std::to_string(completed));

      now += spec.replacement_delay;
      report.replacement_overhead += spec.replacement_delay;
      log(now, "replacement instance provisioned");

      // Parameter propagation to the new node (paper: "elastic deployment
      // by propagating training parameters into newly added computing
      // nodes") — a timed broadcast of the full parameter set.
      double broadcast_done = -1.0;
      dep.collectives.Broadcast(
          static_cast<double>(dep.model.TotalParameterBytes()),
          /*root=*/0, /*ranks=*/{}, [&](double) { broadcast_done = 0.0; });
      const double t0 = dep.sim.Now();
      dep.sim.Run();
      AIACC_CHECK(broadcast_done == 0.0);
      report.rejoin_broadcast_time = dep.sim.Now() - t0;
      now += report.rejoin_broadcast_time;
      log(now, "parameters broadcast to the joining worker");

      const int lost = completed - last_checkpoint;
      report.iterations_replayed = lost;
      report.replay_overhead += lost * iter_time + 0.5 * iter_time;
      completed = last_checkpoint;
      log(now, "resumed from checkpoint @" + std::to_string(last_checkpoint) +
                   " (replaying " + std::to_string(lost) + " iterations)");
      continue;
    }

    const double factor = factor_at(completed);
    if (factor != 1.0 && factor_at(completed - 1) == 1.0) {
      log(now, "LINK FLAP begins (bandwidth x" + std::to_string(factor) +
                   ") at iteration " + std::to_string(completed));
    }
    const double this_iter = iter_time_at(factor);
    now += this_iter;
    report.degradation_overhead += this_iter - iter_time;
    ++completed;
    if (factor != 1.0 && factor_at(completed) == 1.0) {
      log(now, "LINK FLAP ends after iteration " +
                   std::to_string(completed - 1));
    }

    if (spec.checkpoint_interval > 0 &&
        completed % spec.checkpoint_interval == 0 &&
        completed < spec.total_iterations) {
      now += ckpt_time;
      report.checkpoint_overhead += ckpt_time;
      ++report.checkpoints_written;
      last_checkpoint = completed;
      log(now, "checkpoint @" + std::to_string(completed));
    }
  }

  report.total_time = now;
  log(now, "training complete (" + std::to_string(spec.total_iterations) +
               " iterations)");
  return report;
}

}  // namespace aiacc::trainer
