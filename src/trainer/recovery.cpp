#include "trainer/recovery.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>

#include "common/logging.h"
#include "common/sync.h"
#include "core/checkpoint.h"
#include "dnn/mlp.h"

namespace aiacc::trainer {
namespace {

std::string RankList(const std::vector<int>& ranks) {
  std::string out;
  for (int r : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(r);
  }
  return out;
}

// Snapshot the model into a checkpoint and push it through the serialize /
// deserialize round trip, so recovery restores exactly what a node would
// have read back from disk (checksum path included).
Result<core::Checkpoint> SnapshotModel(dnn::Mlp& model, std::int64_t iteration,
                                       float learning_rate) {
  core::Checkpoint snap;
  snap.iteration = iteration;
  snap.learning_rate = learning_rate;
  for (std::span<float> t : model.ParameterTensors()) {
    snap.parameters.emplace_back(t.begin(), t.end());
  }
  return core::DeserializeCheckpoint(core::SerializeCheckpoint(snap));
}

void RestoreModel(dnn::Mlp& model, const core::Checkpoint& ckpt) {
  auto tensors = model.ParameterTensors();
  AIACC_CHECK(tensors.size() == ckpt.parameters.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    AIACC_CHECK(tensors[i].size() == ckpt.parameters[i].size());
    std::copy(ckpt.parameters[i].begin(), ckpt.parameters[i].end(),
              tensors[i].begin());
  }
}

}  // namespace

RecoveryReport TrainWithRecovery(const RecoverySpec& spec) {
  RecoveryReport report;
  if (spec.world_size < 1 || spec.total_iterations < 1 ||
      spec.checkpoint_interval < 1 || spec.min_world_size < 1) {
    report.final_status = InvalidArgument("bad recovery spec");
    return report;
  }

  const auto ds = dnn::MakeSyntheticDataset(
      spec.num_samples, spec.layer_sizes.front(), spec.layer_sizes.back(),
      spec.data_seed);
  const int in = ds.input_size;
  const int out = ds.output_size;

  // Surviving ranks, by original id. Fault specs only apply to the first
  // attempt (the faulty epoch); rebuilt engines run clean.
  std::vector<int> live(static_cast<std::size_t>(spec.world_size));
  std::iota(live.begin(), live.end(), 0);

  // The restore point: iteration 0 is the freshly-initialised model, so a
  // failure before the first snapshot still has somewhere to go back to.
  core::Checkpoint restore_point;
  {
    dnn::Mlp init(spec.layer_sizes, spec.model_seed);
    auto snap = SnapshotModel(init, 0, spec.learning_rate);
    AIACC_CHECK(snap.ok());
    restore_point = std::move(*snap);
  }
  report.timeline.push_back("HEALTHY: " + std::to_string(spec.world_size) +
                            " ranks, " +
                            std::to_string(spec.total_iterations) +
                            " iterations");

  for (;;) {
    ++report.attempts;
    const int world = static_cast<int>(live.size());
    if (spec.num_samples % world != 0) {
      report.final_status = InvalidArgument(
          "num_samples=" + std::to_string(spec.num_samples) +
          " not divisible by surviving world size " + std::to_string(world) +
          " (equal shards required for exact recovery)");
      return report;
    }

    core::FailureConfig failure = spec.failure;
    if (report.attempts > 1) failure.faults.reset();

    core::ThreadedAiaccEngine engine(world, spec.comm, failure);

    const std::int64_t start_iter = restore_point.iteration;
    const int shard = spec.num_samples / world;
    common::Mutex result_mu{"recovery-result",
                            common::lock_rank::kTrainer};
    core::Checkpoint latest = restore_point;  // guarded by result_mu
    std::vector<Status> rank_status(static_cast<std::size_t>(world),
                                    Status::Ok());
    std::vector<std::vector<float>> final_params;  // guarded by result_mu
    std::atomic<std::int64_t> max_completed{start_iter};

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        auto& worker = engine.worker(r);
        dnn::Mlp model(spec.layer_sizes, spec.model_seed);
        RestoreModel(model, restore_point);
        auto grads = model.GradientTensors();
        for (std::size_t t = 0; t < grads.size(); ++t) {
          const Status st =
              worker.Register("g" + std::to_string(t), grads[t]);
          AIACC_CHECK(st.ok());
        }
        worker.Finalize();

        const std::vector<float> x(
            ds.inputs.begin() + static_cast<std::ptrdiff_t>(r) * shard * in,
            ds.inputs.begin() +
                static_cast<std::ptrdiff_t>(r + 1) * shard * in);
        const std::vector<float> y(
            ds.targets.begin() + static_cast<std::ptrdiff_t>(r) * shard * out,
            ds.targets.begin() +
                static_cast<std::ptrdiff_t>(r + 1) * shard * out);

        for (std::int64_t iter = start_iter; iter < spec.total_iterations;
             ++iter) {
          model.Forward(x, shard);
          model.Backward(x, y, shard);
          worker.PushAll();
          const Status st = worker.WaitIteration();
          if (!st.ok()) {
            common::MutexLock lock(result_mu);
            rank_status[static_cast<std::size_t>(r)] = st;
            return;
          }
          model.SgdStep(spec.learning_rate);
          const std::int64_t completed = iter + 1;
          std::int64_t seen = max_completed.load(std::memory_order_relaxed);
          while (seen < completed &&
                 !max_completed.compare_exchange_weak(
                     seen, completed, std::memory_order_relaxed)) {
          }
          // Replica 0 owns checkpointing (parameters are identical on every
          // replica after the averaged step, so one writer suffices).
          if (r == 0 && (completed % spec.checkpoint_interval == 0 ||
                         completed == spec.total_iterations)) {
            auto snap =
                SnapshotModel(model, completed, spec.learning_rate);
            if (snap.ok()) {
              common::MutexLock lock(result_mu);
              latest = std::move(*snap);
            }
          }
        }
        if (r == 0) {
          common::MutexLock lock(result_mu);
          for (std::span<float> t : model.ParameterTensors()) {
            final_params.emplace_back(t.begin(), t.end());
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();

    Status failure_status = engine.health();
    if (failure_status.ok()) {
      for (const Status& st : rank_status) {
        if (!st.ok()) {
          failure_status = st;
          break;
        }
      }
    }
    if (failure_status.ok()) {
      report.final_status = Status::Ok();
      report.final_world_size = world;
      report.final_parameters = std::move(final_params);
      report.timeline.push_back(
          "COMPLETE: " + std::to_string(world) + " ranks finished iteration " +
          std::to_string(spec.total_iterations));
      return report;
    }

    // ABORTED. Map the engine's suspects (current-rank space) back to
    // original rank ids and drop them from the survivor set.
    const std::vector<int> suspects = engine.SuspectedRanks();
    report.timeline.push_back("ABORTED at iteration <= " +
                              std::to_string(max_completed.load()) + ": " +
                              failure_status.message());
    if (suspects.empty()) {
      report.final_status = failure_status;
      report.timeline.push_back("GIVE UP: no suspect to evict");
      return report;
    }
    std::vector<int> evicted;
    for (int s : suspects) {
      evicted.push_back(live[static_cast<std::size_t>(s)]);
    }
    report.failed_ranks.insert(report.failed_ranks.end(), evicted.begin(),
                               evicted.end());
    std::vector<int> survivors;
    for (int i = 0; i < world; ++i) {
      if (std::find(suspects.begin(), suspects.end(), i) == suspects.end()) {
        survivors.push_back(live[static_cast<std::size_t>(i)]);
      }
    }
    live = std::move(survivors);
    ++report.recoveries;
    if (report.recoveries > spec.max_recoveries ||
        static_cast<int>(live.size()) < spec.min_world_size) {
      report.final_status = failure_status;
      report.timeline.push_back(
          "GIVE UP: " + std::to_string(live.size()) + " survivors, " +
          std::to_string(report.recoveries) + " recoveries");
      return report;
    }

    // REBUILD + RESTORE: the next attempt starts from the newest validated
    // snapshot; everything after it is replayed.
    {
      common::MutexLock lock(result_mu);
      restore_point = std::move(latest);
    }
    const std::int64_t replay =
        max_completed.load() - restore_point.iteration;
    report.iterations_replayed += static_cast<int>(std::max<std::int64_t>(
        0, replay));
    report.timeline.push_back(
        "REBUILD: evicted ranks {" + RankList(evicted) + "}, " +
        std::to_string(live.size()) + " survivors");
    report.timeline.push_back(
        "RESTORE: checkpoint @ iteration " +
        std::to_string(restore_point.iteration) + ", replaying " +
        std::to_string(std::max<std::int64_t>(0, replay)) + " iterations");
  }
}

}  // namespace aiacc::trainer
