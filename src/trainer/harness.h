// Measurement harness: builds a fresh simulated deployment (fabric +
// collectives + engine) for a (model, topology, engine-kind) triple and
// measures steady-state training throughput — the quantity every figure in
// the paper's evaluation reports. Also provides the auto-tuned AIACC entry
// point (warm-up tuning, then measurement, per §VI) and scaling sweeps.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autotune/autotuner.h"
#include "baselines/byteps_like.h"
#include "baselines/ddp_like.h"
#include "baselines/horovod_like.h"
#include "core/aiacc_engine.h"

namespace aiacc::trainer {

enum class EngineKind {
  kAiacc,
  kAiaccAutotuned,
  kHorovod,
  kPytorchDdp,
  kByteps,
  kMxnetKvstore,
};

std::string ToString(EngineKind kind);

struct RunSpec {
  std::string model_name = "resnet50";
  net::Topology topology;
  net::FabricParams fabric_params;
  gpu::GpuParams gpu_params;
  int batch_per_gpu = 64;
  dnn::DType wire_dtype = dnn::DType::kF32;
  EngineKind engine = EngineKind::kAiacc;
  /// Fixed config for kAiacc (ignored by baselines); kAiaccAutotuned finds
  /// its own.
  core::CommConfig aiacc_config;
  /// Auto-tune budget for kAiaccAutotuned (paper default 100; benches use a
  /// smaller deterministic budget).
  int tune_budget = 40;
  int warmup_iterations = 3;
  int measure_iterations = 8;
  /// Optional cross-run tuning cache (kAiaccAutotuned only).
  autotune::TuningCache* tuning_cache = nullptr;
  /// §IX extension: CPU-offloaded optimizer update.
  bool cpu_optimizer_offload = false;
  /// Run-to-run compute jitter (log-normal sigma). With `repeats` > 1 the
  /// harness measures each repeat under a different seed and reports the
  /// geometric mean — the paper's §VII-D methodology ("run each experimental
  /// setup 5 times and report the geometric mean").
  double compute_jitter_sigma = 0.0;
  int repeats = 1;
  /// Background traffic from other cloud tenants (§V-B: "physical network
  /// links become congested due to burst communications from other shared
  /// cloud users"): fraction of host 0's NIC occupied by foreign flows for
  /// the whole run. 0 = exclusive machines (the paper's main setup).
  double background_load = 0.0;
};

struct RunResult {
  double throughput = 0.0;       // samples/sec, whole cluster
  double per_gpu_throughput = 0.0;
  double iteration_time = 0.0;   // mean seconds
  core::CommConfig chosen_config;  // meaningful for AIACC engines
  std::optional<autotune::AutotuneResult> tuning;
  core::IterationStats last_iteration;
};

/// Build the deployment, run warm-up + measurement, return throughput.
RunResult Run(const RunSpec& spec);

/// Scaling sweep: same spec evaluated at several GPU counts. `gpu_counts`
/// below one full host use a single host with that many GPUs.
struct ScalingPoint {
  int gpus = 0;
  double throughput = 0.0;
  double scaling_efficiency = 0.0;  // vs single-GPU throughput * N
};
std::vector<ScalingPoint> ScalingSweep(RunSpec spec,
                                       const std::vector<int>& gpu_counts);

/// Hybrid data+model parallelism (paper Fig. 13): the model is split into
/// `model_shards` stages, each stage placed on one GPU; groups of shards
/// form replicas; gradients of each shard all-reduce across replicas only.
/// Returns cluster throughput (samples/sec).
struct HybridSpec {
  std::string model_name = "resnet50";
  net::Topology topology;
  net::FabricParams fabric_params;
  gpu::GpuParams gpu_params;
  int batch_per_replica = 64;
  int model_shards = 2;
  bool use_aiacc = true;  // false: MXNet-KVStore-style PS per shard
  core::CommConfig aiacc_config;
  int measure_iterations = 8;
};
double RunHybrid(const HybridSpec& spec);

/// Convenience: topology for `gpus` GPUs in hosts of `gpus_per_host`.
net::Topology MakeTopology(int gpus, int gpus_per_host = 8,
                           net::TransportKind transport =
                               net::TransportKind::kTcp);

}  // namespace aiacc::trainer
