#include "sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace aiacc::sim {
namespace {

/// Minimal JSON string escaping (quotes/backslashes/control chars).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Tracer::AddSpan(std::string track, std::string name, double begin,
                     double end) {
  AIACC_CHECK(end >= begin);
  spans_.push_back(Span{std::move(track), std::move(name), begin, end});
}

void Tracer::AddInstant(std::string track, std::string name, double time) {
  instants_.push_back(Instant{std::move(track), std::move(name), time});
}

void Tracer::Clear() {
  spans_.clear();
  instants_.clear();
}

std::string Tracer::ToChromeJson() const {
  // Stable track -> tid mapping in first-appearance order.
  std::map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()));
    return it->second;
  };

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const Span& s : spans_) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid_of(s.track)
        << ",\"name\":\"" << Escape(s.name) << "\",\"ts\":" << s.begin * 1e6
        << ",\"dur\":" << (s.end - s.begin) * 1e6 << "}";
  }
  for (const Instant& i : instants_) {
    sep();
    out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid_of(i.track)
        << ",\"s\":\"t\",\"name\":\"" << Escape(i.name)
        << "\",\"ts\":" << i.time * 1e6 << "}";
  }
  // Track-name metadata so viewers show human-readable lanes.
  for (const auto& [track, tid] : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << Escape(track) << "\"}}";
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + path);
  const std::string json = ToChromeJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) return DataLoss("short write");
  return Status::Ok();
}

double Tracer::BusyTime(const std::string& track) const {
  // Merge overlapping spans on the track and sum their union.
  std::vector<std::pair<double, double>> intervals;
  for (const Span& s : spans_) {
    if (s.track == track) intervals.emplace_back(s.begin, s.end);
  }
  std::sort(intervals.begin(), intervals.end());
  double busy = 0.0;
  double cur_begin = 0.0;
  double cur_end = -1.0;
  for (const auto& [b, e] : intervals) {
    if (b > cur_end) {
      if (cur_end > cur_begin) busy += cur_end - cur_begin;
      cur_begin = b;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (cur_end > cur_begin) busy += cur_end - cur_begin;
  return busy;
}

}  // namespace aiacc::sim
