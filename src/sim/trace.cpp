#include "sim/trace.h"

#include "common/logging.h"

namespace aiacc::sim {

void Tracer::AddSpan(std::string track, std::string name, double begin,
                     double end) {
  AIACC_CHECK(end >= begin);
  spans_.push_back(
      Span{std::move(track), std::move(name), begin, end, "", "", 0});
}

void Tracer::AddInstant(std::string track, std::string name, double time) {
  instants_.push_back(
      Instant{std::move(track), std::move(name), time, "", "", 0});
}

void Tracer::Clear() {
  spans_.clear();
  instants_.clear();
}

std::string Tracer::ToChromeJson() const {
  return telemetry::ToChromeJson(spans_, instants_);
}

Status Tracer::WriteTo(const std::string& path) const {
  return telemetry::WriteChromeTrace(path, spans_, instants_);
}

double Tracer::BusyTime(const std::string& track) const {
  return telemetry::BusyTime(spans_, track);
}

}  // namespace aiacc::sim
