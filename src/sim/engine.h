// Discrete-event simulation engine. Single-threaded and deterministic: events
// fire in (time, insertion-sequence) order, so two events at the same
// simulated instant always run in the order they were scheduled. All timed
// substrates (network flows, GPU compute, the AIACC engine) run on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace aiacc::sim {

/// Simulated time in seconds.
using Time = double;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time Now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute simulated time `when` (>= Now()).
  EventId ScheduleAt(Time when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before. O(1); the heap entry is skipped lazily.
  bool Cancel(EventId id);

  /// Run the next pending event (if any). Returns false when the queue is
  /// exhausted.
  bool Step();

  /// Run until no events remain.
  void Run();

  /// Run events with time <= `deadline`; Now() ends at min(deadline, last
  /// event time). Events scheduled beyond the deadline stay pending.
  void RunUntil(Time deadline);

  [[nodiscard]] std::size_t PendingEvents() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Total events executed — a cheap progress/debug metric.
  [[nodiscard]] std::uint64_t ExecutedEvents() const noexcept {
    return executed_;
  }

 private:
  struct Entry {
    Time time;
    EventId id;
    // Min-heap by (time, id): earlier time first; FIFO among equal times.
    bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  // Callback storage separated from the heap so cancellation can free the
  // closure immediately (closures can own large gradient buffers).
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace aiacc::sim
