// Execution tracing for simulated runs. The engines emit spans (forward,
// backward, sync rounds, per-stream all-reduce units) onto named tracks;
// the tracer renders them as Chrome trace-event JSON ("chrome://tracing" /
// Perfetto), the way a production library exposes its overlap behaviour for
// debugging. Pure data, no global state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace aiacc::sim {

class Tracer {
 public:
  struct Span {
    std::string track;   // e.g. "compute", "sync", "stream 3"
    std::string name;    // e.g. "backward", "unit 17 (8 MiB)"
    double begin = 0.0;  // simulated seconds
    double end = 0.0;
  };
  struct Instant {
    std::string track;
    std::string name;
    double time = 0.0;
  };

  void AddSpan(std::string track, std::string name, double begin, double end);
  void AddInstant(std::string track, std::string name, double time);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<Instant>& instants() const noexcept {
    return instants_;
  }
  void Clear();

  /// Chrome trace-event format: {"traceEvents":[{"ph":"X",...},...]}.
  /// Tracks become thread ids (tid), simulated seconds become microseconds.
  [[nodiscard]] std::string ToChromeJson() const;

  /// Write the JSON to a file.
  Status WriteTo(const std::string& path) const;

  /// Total busy time on one track (for overlap assertions in tests).
  [[nodiscard]] double BusyTime(const std::string& track) const;

 private:
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

}  // namespace aiacc::sim
