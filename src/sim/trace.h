// Execution tracing for simulated runs. The engines emit spans (forward,
// backward, sync rounds, per-stream all-reduce units) onto named tracks;
// the tracer renders them as Chrome trace-event JSON ("chrome://tracing" /
// Perfetto), the way a production library exposes its overlap behaviour for
// debugging. Pure data, no global state.
//
// The event model and JSON emitter are shared with the threaded runtime's
// wall-clock tracer (telemetry/trace_events.h): both produce one schema, so
// a simulated trace and a real-thread trace open identically in the viewer
// and are checked by the same tools/trace_lint.py.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace_events.h"

namespace aiacc::sim {

class Tracer {
 public:
  // In the simulator a "track" is a logical lane ("compute", "stream 3")
  // and times are simulated seconds; the shared model adds an optional
  // category which the sim engines leave empty.
  using Span = telemetry::SpanEvent;
  using Instant = telemetry::InstantEvent;

  void AddSpan(std::string track, std::string name, double begin, double end);
  void AddInstant(std::string track, std::string name, double time);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<Instant>& instants() const noexcept {
    return instants_;
  }
  void Clear();

  /// Chrome trace-event format: {"traceEvents":[{"ph":"X",...},...]}.
  /// Tracks become thread ids (tid), simulated seconds become microseconds.
  [[nodiscard]] std::string ToChromeJson() const;

  /// Write the JSON to a file.
  Status WriteTo(const std::string& path) const;

  /// Total busy time on one track (for overlap assertions in tests).
  [[nodiscard]] double BusyTime(const std::string& track) const;

 private:
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

}  // namespace aiacc::sim
