#include "sim/engine.h"

#include <utility>

namespace aiacc::sim {

EventId Engine::ScheduleAt(Time when, std::function<void()> fn) {
  AIACC_CHECK(when >= now_);
  AIACC_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Engine::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Engine::Step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    AIACC_CHECK(cb_it != callbacks_.end());
    std::function<void()> fn = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::Run() {
  while (Step()) {
  }
}

void Engine::RunUntil(Time deadline) {
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Entry top = heap_.top();
    if (cancelled_.contains(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace aiacc::sim
