#include "telemetry/trace_context.h"

#include <cmath>

namespace aiacc::telemetry {
namespace {

constexpr std::uint64_t kLimb = 1ULL << 16;

/// A float lane that must hold a small non-negative integer; nullopt when
/// it holds anything else (same contract as the reliable layer's header
/// lanes — see transport/reliable.cpp).
std::optional<std::uint64_t> IntLane(float v, std::uint64_t limit) noexcept {
  if (!std::isfinite(v) || v < 0.0f) return std::nullopt;
  const auto u = static_cast<std::uint64_t>(v);
  if (static_cast<float>(u) != v || u >= limit) return std::nullopt;
  return u;
}

}  // namespace

void WriteStamp(float* lanes, const TraceStamp& stamp) noexcept {
  lanes[0] = static_cast<float>(kStampMagic);
  lanes[1] = static_cast<float>(stamp.origin);
  lanes[2] = static_cast<float>(stamp.msg_id >> 16);
  lanes[3] = static_cast<float>(stamp.msg_id & 0xFFFFu);
  const auto hlc = static_cast<std::uint64_t>(stamp.hlc);
  lanes[4] = static_cast<float>((hlc >> 48) & 0xFFFFu);
  lanes[5] = static_cast<float>((hlc >> 32) & 0xFFFFu);
  lanes[6] = static_cast<float>((hlc >> 16) & 0xFFFFu);
  lanes[7] = static_cast<float>(hlc & 0xFFFFu);
}

std::optional<TraceStamp> ParseStamp(const float* lanes) noexcept {
  const auto magic = IntLane(lanes[0], 1ULL << 24);
  if (!magic.has_value() || *magic != kStampMagic) return std::nullopt;
  const auto origin = IntLane(lanes[1], kLimb);
  const auto id_hi = IntLane(lanes[2], kLimb);
  const auto id_lo = IntLane(lanes[3], kLimb);
  if (!origin || !id_hi || !id_lo) return std::nullopt;
  std::uint64_t hlc = 0;
  for (int i = 4; i < 8; ++i) {
    const auto limb = IntLane(lanes[i], kLimb);
    if (!limb.has_value()) return std::nullopt;
    hlc = (hlc << 16) | *limb;
  }
  TraceStamp stamp;
  stamp.origin = static_cast<int>(*origin);
  stamp.msg_id = static_cast<std::uint32_t>((*id_hi << 16) | *id_lo);
  stamp.hlc = static_cast<std::int64_t>(hlc);
  return stamp;
}

std::optional<TraceStamp> StripStamp(std::vector<float>& frame) {
  if (frame.size() < kStampLanes) return std::nullopt;
  const auto stamp = ParseStamp(frame.data() + frame.size() - kStampLanes);
  if (!stamp.has_value()) return std::nullopt;
  frame.resize(frame.size() - kStampLanes);  // shrink, never reallocates
  return stamp;
}

std::int64_t HybridLogicalClock::AdvancePast(std::int64_t floor) noexcept {
  std::int64_t prev = last_.load(std::memory_order_relaxed);
  std::int64_t next;
  do {
    next = std::max(prev, floor) + 1;
  } while (!last_.compare_exchange_weak(prev, next, std::memory_order_acq_rel,
                                        std::memory_order_relaxed));
  return next;
}

}  // namespace aiacc::telemetry
