// Always-on flight recorder: a fixed ring of recent high-severity runtime
// events (faults, quarantines, retransmit exhaustion, degradation ladder
// moves, abort reasons) that turns "collective aborted with non-OK status"
// into a causal story (DESIGN.md §7).
//
// Unlike the tracer — opt-in, high-volume, span-oriented — the flight
// recorder is always recording and deliberately tiny: Record claims a slot
// with one atomic fetch_add and writes a POD event (two string *literals*,
// a few integers), so the steady-state cost is nanoseconds and zero
// allocations; the preallocated ring simply keeps the most recent
// `capacity` events.
//
// Severity taxonomy (DESIGN.md §7 documents the mapping per component):
//   kInfo   state transitions that are part of healing (probation entry,
//           channel readmission, degradation *restore*)
//   kWarn   in-band repair work (unit retry, degradation ladder *down*,
//           CRC discard) — the run is still healthy but paying for faults
//   kError  a layer gave up locally (retransmit exhaustion, channel
//           quarantine, collective failure on one rank)
//   kFatal  the run is over (engine abort, injected rank crash)
//
// Dumping: DumpToEnvDir writes the ring as JSON to $AIACC_FLIGHT_DIR —
// called automatically on engine abort and on agreed channel failure (the
// two places a run turns into a post-mortem), and only for the first such
// fault per process (later faults are echoes of the first). The analyzer
// (tools/trace_analyze.py --flight) merges the dump into its report.
//
// Torn slots: Record never blocks, so a reader racing a wrapping writer
// can observe a half-written slot. Each slot carries a sequence stamp
// written last (release) and checked by Snapshot; a torn slot is skipped.
// This is a post-mortem tool — best effort on the events still in flight,
// exact on everything that happened before the fault.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace aiacc::telemetry {

enum class FlightSeverity : int { kInfo = 0, kWarn = 1, kError = 2, kFatal = 3 };

[[nodiscard]] const char* FlightSeverityName(FlightSeverity severity) noexcept;

/// One recorded event. `component`/`what` are string literals (the ring
/// stores the pointers). rank/channel/tag are -1 when not applicable;
/// detail0/detail1 are event-specific (seq, epoch, level, status code...).
struct FlightEvent {
  std::uint64_t seq = 0;       // global order (1-based; 0 = empty slot)
  std::int64_t mono_ns = 0;    // steady-clock ns since recorder creation
  FlightSeverity severity = FlightSeverity::kInfo;
  const char* component = "";  // "engine", "transport.reliable", ...
  const char* what = "";       // "abort", "quarantine", ...
  int rank = -1;
  int channel = -1;
  int tag = -1;
  std::int64_t detail0 = 0;
  std::int64_t detail1 = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event (lock-free, zero-alloc; literals only for
  /// `component`/`what`).
  void Record(FlightSeverity severity, const char* component,
              const char* what, int rank = -1, int channel = -1, int tag = -1,
              std::int64_t detail0 = 0, std::int64_t detail1 = 0) noexcept;

  /// The surviving events in recording order (torn slots skipped).
  [[nodiscard]] std::vector<FlightEvent> Snapshot() const;

  /// Render a snapshot as a JSON document (schema consumed by
  /// tools/trace_analyze.py --flight).
  [[nodiscard]] std::string ToJson() const;

  /// Write ToJson() to `path`.
  Status DumpTo(const std::string& path) const;

  /// When $AIACC_FLIGHT_DIR is set, write `<dir>/flight-<reason>.json` —
  /// once per process (the first fault wins; later calls are no-ops
  /// returning Ok). `reason` must be a short filename-safe literal
  /// ("abort", "channel-failure"). Without the env var: a no-op.
  Status DumpToEnvDir(const char* reason);

  /// Total events ever recorded (>= capacity means the ring wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Process-wide recorder (what the engine and transport layers use).
  static FlightRecorder& Global();

 private:
  struct Slot {
    /// 0 = never written; otherwise the event's seq, stored last with
    /// release order so a reader that sees it sees the whole event.
    std::atomic<std::uint64_t> committed{0};
    FlightEvent event;
  };

  const std::int64_t origin_ns_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> env_dumped_{false};
};

}  // namespace aiacc::telemetry
