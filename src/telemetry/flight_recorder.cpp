#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace aiacc::telemetry {
namespace {

std::int64_t SteadyNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for the component/what literals (they are
/// controlled identifiers, but corruption-proofing is cheap).
std::string Escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  return out;
}

}  // namespace

const char* FlightSeverityName(FlightSeverity severity) noexcept {
  switch (severity) {
    case FlightSeverity::kInfo: return "info";
    case FlightSeverity::kWarn: return "warn";
    case FlightSeverity::kError: return "error";
    case FlightSeverity::kFatal: return "fatal";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : origin_ns_(SteadyNowNs()), slots_(capacity) {
  AIACC_CHECK(capacity > 0);
}

void FlightRecorder::Record(FlightSeverity severity, const char* component,
                            const char* what, int rank, int channel, int tag,
                            std::int64_t detail0,
                            std::int64_t detail1) noexcept {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  // Invalidate first so a racing reader never attributes the old seq to
  // the new payload, then publish with a release store.
  slot.committed.store(0, std::memory_order_relaxed);
  slot.event.seq = seq + 1;
  slot.event.mono_ns = SteadyNowNs() - origin_ns_;
  slot.event.severity = severity;
  slot.event.component = component;
  slot.event.what = what;
  slot.event.rank = rank;
  slot.event.channel = channel;
  slot.event.tag = tag;
  slot.event.detail0 = detail0;
  slot.event.detail1 = detail1;
  slot.committed.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t committed =
        slot.committed.load(std::memory_order_acquire);
    if (committed == 0) continue;
    FlightEvent copy = slot.event;
    // Torn-slot check: the stamp must still match after copying the
    // payload (a wrapping writer invalidates before rewriting).
    if (slot.committed.load(std::memory_order_acquire) != committed ||
        copy.seq != committed) {
      continue;
    }
    events.push_back(copy);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::ostringstream out;
  out << "{\"recorded\":" << recorded() << ",\"capacity\":" << slots_.size()
      << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"seq\":" << e.seq << ",\"t_ns\":" << e.mono_ns
        << ",\"severity\":\"" << FlightSeverityName(e.severity)
        << "\",\"component\":\"" << Escape(e.component) << "\",\"what\":\""
        << Escape(e.what) << "\",\"rank\":" << e.rank
        << ",\"channel\":" << e.channel << ",\"tag\":" << e.tag
        << ",\"detail0\":" << e.detail0 << ",\"detail1\":" << e.detail1
        << "}";
  }
  out << "]}";
  return out.str();
}

Status FlightRecorder::DumpTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + path);
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) return DataLoss("short write");
  return Status::Ok();
}

Status FlightRecorder::DumpToEnvDir(const char* reason) {
  const char* dir = std::getenv("AIACC_FLIGHT_DIR");
  if (dir == nullptr || dir[0] == '\0') return Status::Ok();
  if (env_dumped_.exchange(true, std::memory_order_acq_rel)) {
    return Status::Ok();  // first fault wins; echoes are not post-mortems
  }
  const std::string path =
      std::string(dir) + "/flight-" + reason + ".json";
  const Status st = DumpTo(path);
  if (st.ok()) {
    LOG_WARN << "flight recorder dumped to " << path;
  } else {
    LOG_WARN << "flight recorder dump to " << path
             << " failed: " << st.ToString();
  }
  return st;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

}  // namespace aiacc::telemetry
