#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"

namespace aiacc::telemetry {
namespace {

/// Strip an `@scope` suffix: "engine.sync_rounds@r3" -> base name.
std::string_view BaseName(std::string_view name) {
  const auto at = name.rfind('@');
  return at == std::string_view::npos ? name : name.substr(0, at);
}

std::string FormatCompact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0.0;
  const double target = (p / 100.0) * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t c = counts[b];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double hi = bounds[b];
      const double lo = b == 0 ? std::min(0.0, hi) : bounds[b - 1];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += c;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    AIACC_CHECK(bounds_[i] > bounds_[i - 1]);
  }
}

void Histogram::Record(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double first, int n, double factor) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double edge = first;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::string Scoped(std::string_view base, std::string_view scope) {
  std::string out;
  out.reserve(base.size() + scope.size() + 1);
  out.append(base).append("@").append(scope);
  return out;
}

std::string RankScoped(std::string_view base, int rank) {
  return Scoped(base, "r" + std::to_string(rank));
}

std::uint64_t RegistrySnapshot::CounterValue(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.kind == MetricSnapshot::Kind::kCounter) {
      return m.counter;
    }
  }
  return 0;
}

RegistrySnapshot RegistrySnapshot::Aggregate() const {
  std::map<std::string, MetricSnapshot> merged;
  for (const MetricSnapshot& m : metrics) {
    const std::string base(BaseName(m.name));
    auto [it, inserted] = merged.emplace(base, m);
    if (inserted) {
      it->second.name = base;
      continue;
    }
    MetricSnapshot& acc = it->second;
    if (acc.kind != m.kind) continue;  // name collision across kinds: keep first
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        acc.counter += m.counter;
        break;
      case MetricSnapshot::Kind::kGauge:
        acc.gauge = std::max(acc.gauge, m.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram:
        if (acc.histogram.bounds == m.histogram.bounds) {
          for (std::size_t b = 0; b < acc.histogram.counts.size(); ++b) {
            acc.histogram.counts[b] += m.histogram.counts[b];
          }
          acc.histogram.count += m.histogram.count;
          acc.histogram.sum += m.histogram.sum;
        }
        break;
    }
  }
  RegistrySnapshot out;
  out.metrics.reserve(merged.size());
  for (auto& [name, m] : merged) out.metrics.push_back(std::move(m));
  return out;
}

std::string RegistrySnapshot::ToTable() const {
  TablePrinter table({"metric", "type", "value", "p50", "p99"});
  for (const MetricSnapshot& m : metrics) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        table.AddRow({m.name, "counter", std::to_string(m.counter), "", ""});
        break;
      case MetricSnapshot::Kind::kGauge:
        table.AddRow({m.name, "gauge", FormatCompact(m.gauge), "", ""});
        break;
      case MetricSnapshot::Kind::kHistogram:
        table.AddRow({m.name, "histogram",
                      std::to_string(m.histogram.count) + " x mean " +
                          FormatCompact(m.histogram.Mean()),
                      FormatCompact(m.histogram.Quantile(50.0)),
                      FormatCompact(m.histogram.Quantile(99.0))});
        break;
    }
  }
  return table.ToString();
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << m.name << "\",";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << "\"type\":\"counter\",\"value\":" << m.counter;
        break;
      case MetricSnapshot::Kind::kGauge:
        out << "\"type\":\"gauge\",\"value\":" << FormatCompact(m.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out << "\"type\":\"histogram\",\"count\":" << m.histogram.count
            << ",\"sum\":" << FormatCompact(m.histogram.sum)
            << ",\"p50\":" << FormatCompact(m.histogram.Quantile(50.0))
            << ",\"p99\":" << FormatCompact(m.histogram.Quantile(99.0))
            << ",\"bounds\":[";
        for (std::size_t i = 0; i < m.histogram.bounds.size(); ++i) {
          if (i > 0) out << ",";
          out << FormatCompact(m.histogram.bounds[i]);
        }
        out << "],\"buckets\":[";
        for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
          if (i > 0) out << ",";
          out << m.histogram.counts[i];
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  common::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  common::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  common::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

void MetricsRegistry::AttachCallback(const std::string& name,
                                     std::function<std::uint64_t()> fn) {
  common::MutexLock lock(mu_);
  entries_[name].callback = std::move(fn);
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot out;
  common::MutexLock lock(mu_);
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kCounter;
      m.counter = e.counter->Value();
      out.metrics.push_back(std::move(m));
    }
    if (e.gauge != nullptr) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kGauge;
      m.gauge = e.gauge->Value();
      out.metrics.push_back(std::move(m));
    }
    if (e.histogram != nullptr) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kHistogram;
      m.histogram = e.histogram->Snapshot();
      out.metrics.push_back(std::move(m));
    }
    if (e.callback) {
      MetricSnapshot m;
      m.name = name;
      m.kind = MetricSnapshot::Kind::kCounter;
      m.counter = e.callback();
      out.metrics.push_back(std::move(m));
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  common::MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

}  // namespace aiacc::telemetry
