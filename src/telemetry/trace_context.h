// Wire-level trace context: the compact stamp the tracing transport
// appends to every frame so a recv on one rank can be causally bound to
// the send that produced it on another (DESIGN.md §7 "Causal tracing").
//
// The stamp is a *trailer* of float lanes after the body, mirroring how
// transport/reliable.{h,cpp} packs seq+CRC into header lanes: every lane
// holds a small non-negative integer that is exactly representable as a
// float (ints < 2^24 are exact; wider values are split into 16-bit limbs).
// A trailer — rather than a header — keeps body lane indices unchanged for
// every layer below, and because the tracing decorator is the *topmost*
// layer of the stack (inproc -> faulty -> reliable -> tracing), the
// reliable layer's CRC covers the stamp like any other body bytes.
//
//   [n+0] magic       kStampMagic — guards against stripping a frame that
//                     was never stamped (mixed stacks, corruption)
//   [n+1] origin rank
//   [n+2] msg id hi   upper 16 bits of the per-origin 32-bit message id
//   [n+3] msg id lo   lower 16 bits
//   [n+4..n+7] HLC    64-bit hybrid logical clock, 16-bit limbs, most
//                     significant first
//
// The (origin, msg id) pair is globally unique without coordination —
// each origin numbers its own sends — and is the Chrome flow-event id
// binding the send span to the recv span. The HLC gives every message a
// causal order that survives clock skew: it advances with the sender's
// physical clock but never runs behind any message it has observed, so
// recv-HLC > send-HLC on every edge even when the receiver's wall clock
// is behind the sender's (telemetry/merge.h uses this to validate merged
// timelines).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace aiacc::telemetry {

/// Trailer lanes appended per frame.
inline constexpr std::size_t kStampLanes = 8;

/// Magic marking a stamped frame. Chosen to be exactly float-representable
/// (< 2^24) and disjoint from the reliable layer's frame-kind lane values
/// (1 = data, 2 = ack) so a stamp lane can never be misread as a reliable
/// header even if a bug strips layers in the wrong order
/// (tools/aiacc_analyzer cross-checks this against transport/reliable.cpp).
inline constexpr std::uint32_t kStampMagic = 0xA1ACC;

/// One frame's trace context.
struct TraceStamp {
  int origin = 0;             // sending rank
  std::uint32_t msg_id = 0;   // per-origin send counter (wraps at 2^32)
  std::int64_t hlc = 0;       // hybrid logical clock at send, ns domain
};

/// The Chrome flow-event id both ends derive from the stamp. Unique per
/// message: each origin numbers its own sends.
[[nodiscard]] constexpr std::uint64_t FlowId(int origin,
                                             std::uint32_t msg_id) noexcept {
  return (static_cast<std::uint64_t>(origin + 1) << 32) | msg_id;
}

/// Write the 8 stamp lanes at `lanes` (caller provides kStampLanes floats).
void WriteStamp(float* lanes, const TraceStamp& stamp) noexcept;

/// Parse kStampLanes floats; nullopt when the magic or any limb lane does
/// not hold the exact small integer the format requires (unstamped frame,
/// or corruption that hit the trailer).
[[nodiscard]] std::optional<TraceStamp> ParseStamp(const float* lanes) noexcept;

/// Strip a trailer appended to `frame` in place (resize down — never
/// reallocates, so a pooled buffer keeps its size class). Returns the
/// parsed stamp, or nullopt (frame untouched) when no valid stamp is
/// present.
std::optional<TraceStamp> StripStamp(std::vector<float>& frame);

/// 64-bit hybrid logical clock, one per rank. A single hybrid timestamp in
/// the nanosecond domain: Tick (send) returns max(physical_now, last + 1);
/// Observe (recv) additionally runs past the remote stamp. Nanosecond
/// resolution makes the +1 logical component vanish against real clock
/// advance, so no separate logical counter lane is needed. Lock-free
/// (CAS-max) — called on the transport hot path.
class HybridLogicalClock {
 public:
  /// Timestamp for an outgoing message.
  std::int64_t Tick(std::int64_t now_ns) noexcept {
    return AdvancePast(now_ns - 1);
  }
  /// Fold in an incoming message's stamp; returns the new local value
  /// (> remote_hlc and > any previous local value).
  std::int64_t Observe(std::int64_t now_ns, std::int64_t remote_hlc) noexcept {
    return AdvancePast(std::max(now_ns - 1, remote_hlc));
  }
  [[nodiscard]] std::int64_t last() const noexcept {
    return last_.load(std::memory_order_relaxed);
  }

 private:
  /// Atomically set last_ to max(last_ + 1, floor + 1) and return it.
  std::int64_t AdvancePast(std::int64_t floor) noexcept;

  std::atomic<std::int64_t> last_{0};
};

}  // namespace aiacc::telemetry
