#include "telemetry/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/buffer_pool.h"
#include "common/logging.h"

namespace aiacc::telemetry {
namespace {

/// Impl accessors used inside init: construct the singletons WITHOUT
/// re-entering InitFromEnvOnce (the public Global()s call init, so routing
/// init through them would re-enter the once-flag and deadlock).
RuntimeTracer& GlobalTracerImpl() {
  static RuntimeTracer* tracer = new RuntimeTracer();  // leaked: threads may
  return *tracer;  // record during static teardown
}

MetricsRegistry& GlobalRegistryImpl() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

EnvOptions& MutableGlobalEnvOptions() {
  static EnvOptions* options = new EnvOptions();
  return *options;
}

void AtExitDump() {
  const EnvOptions& options = MutableGlobalEnvOptions();
  if (!options.trace_path.empty()) {
    const Status st = GlobalTracerImpl().WriteTo(options.trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry: trace write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (!options.metrics_dump.empty()) {
    const Status st =
        DumpMetrics(GlobalRegistryImpl().Snapshot(), options.metrics_dump);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry: metrics dump failed: %s\n",
                   st.ToString().c_str());
    }
  }
}

}  // namespace

EnvOptions ParseEnvOptions(
    const std::function<const char*(const char*)>& getenv_fn) {
  EnvOptions options;
  if (const char* v = getenv_fn("AIACC_TRACE"); v != nullptr && *v != '\0') {
    options.trace_path = v;
  }
  if (const char* v = getenv_fn("AIACC_TRACE_LEVEL");
      v != nullptr && *v != '\0') {
    const std::string level = v;
    if (level == "verbose" || level == "2") {
      options.trace_level = TraceLevel::kVerbose;
    } else if (level == "off" || level == "0") {
      options.trace_level = TraceLevel::kOff;
    } else {
      options.trace_level = TraceLevel::kPhase;  // "phase", "1", anything else
    }
  }
  if (const char* v = getenv_fn("AIACC_METRICS_DUMP");
      v != nullptr && *v != '\0') {
    options.metrics_dump = v;
  }
  if (const char* v = getenv_fn("AIACC_METRICS_PERIOD_MS");
      v != nullptr && *v != '\0') {
    options.metrics_period_ms = std::atoi(v);
    if (options.metrics_period_ms < 0) options.metrics_period_ms = 0;
  }
  return options;
}

EnvOptions ParseEnvOptions() {
  return ParseEnvOptions(
      [](const char* name) -> const char* { return std::getenv(name); });
}

void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    EnvOptions& options = MutableGlobalEnvOptions();
    options = ParseEnvOptions();

    // One metrics surface: the shared BufferPool reports through the
    // registry via callbacks (the pool lives below telemetry in the layer
    // graph, so it cannot push; the registry pulls its atomic stats).
    MetricsRegistry& registry = GlobalRegistryImpl();
    registry.AttachCallback("pool.hits", [] {
      return common::BufferPool::Global().stats().hits;
    });
    registry.AttachCallback("pool.misses", [] {
      return common::BufferPool::Global().stats().misses;
    });
    registry.AttachCallback("pool.returns", [] {
      return common::BufferPool::Global().stats().returns;
    });
    registry.AttachCallback("pool.discarded", [] {
      return common::BufferPool::Global().stats().discarded;
    });

    if (!options.trace_path.empty() &&
        options.trace_level != TraceLevel::kOff) {
      GlobalTracerImpl().Enable(options.trace_level);
    }
    if (!options.trace_path.empty() || !options.metrics_dump.empty()) {
      std::atexit(AtExitDump);
    }
  });
}

const EnvOptions& GlobalEnvOptions() {
  InitFromEnvOnce();
  return MutableGlobalEnvOptions();
}

int MetricsDumpPeriodMs() { return GlobalEnvOptions().metrics_period_ms; }

Status DumpMetrics(const RegistrySnapshot& snapshot, const std::string& dest) {
  if (dest == "stderr") {
    const std::string table = snapshot.ToTable();
    std::fputs(table.c_str(), stderr);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(dest.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + dest);
  const std::string json = snapshot.ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) return DataLoss("short write");
  return Status::Ok();
}

RuntimeTracer& RuntimeTracer::Global() {
  RuntimeTracer& tracer = GlobalTracerImpl();
  InitFromEnvOnce();
  return tracer;
}

MetricsRegistry& MetricsRegistry::Global() {
  MetricsRegistry& registry = GlobalRegistryImpl();
  InitFromEnvOnce();
  return registry;
}

}  // namespace aiacc::telemetry
