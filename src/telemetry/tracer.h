// Wall-clock tracer for the threaded runtime. Produces the same Chrome
// trace-event JSON as sim::Tracer (both render through
// telemetry/trace_events.h), but records real threads in real time:
//
//   - One lane per recording thread (the lane name comes from the thread's
//     log context — see SetThreadLogContext in common/logging.h), so the
//     viewer shows comm/heartbeat/service threads exactly as they ran.
//   - Per-thread ring storage: Record writes one fixed-size Event into a
//     preallocated thread-local ring (relaxed atomic head bump, no lock, no
//     allocation); old events are overwritten when the ring wraps and the
//     overwrite count is reported.
//   - Level gating: a disabled tracer costs one relaxed atomic load per
//     span/instant site. kPhase covers coarse phases (collectives, sync
//     rounds, channels); kVerbose adds per-step transport-level events.
//
// Collect/ToChromeJson/Clear are NOT synchronized against concurrent
// Record: flush only after the recording threads have quiesced (joined, or
// provably idle — a join gives the needed happens-before edge). The
// engine's periodic dumper therefore dumps *metrics* live and leaves the
// trace to be written once at shutdown/atexit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "telemetry/trace_events.h"

namespace aiacc::telemetry {

class Counter;  // telemetry/metrics.h

enum class TraceLevel : int {
  kOff = 0,
  kPhase = 1,    // collective phases, sync rounds, channels, tuner steps
  kVerbose = 2,  // + per-step transport send/recv/wake events
};

class RuntimeTracer {
 public:
  struct Options {
    std::size_t ring_capacity = std::size_t{1} << 15;  // events per thread
  };

  RuntimeTracer() : RuntimeTracer(Options{}) {}
  explicit RuntimeTracer(const Options& options);
  RuntimeTracer(const RuntimeTracer&) = delete;
  RuntimeTracer& operator=(const RuntimeTracer&) = delete;
  ~RuntimeTracer();

  /// Start recording at `level`; re-enabling does not reset the clock
  /// origin, so spans from separate enabled windows stay ordered.
  void Enable(TraceLevel level = TraceLevel::kPhase);
  void Disable() { level_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] bool enabled(TraceLevel level) const noexcept {
    return level_.load(std::memory_order_relaxed) >= static_cast<int>(level);
  }
  [[nodiscard]] TraceLevel level() const noexcept {
    return static_cast<TraceLevel>(level_.load(std::memory_order_relaxed));
  }

  /// Nanoseconds since this tracer's origin (steady clock).
  [[nodiscard]] std::int64_t NowNs() const noexcept;

  /// Record one closed span / one point event on the calling thread's lane.
  /// `cat` and `name` must be string literals (the ring stores the
  /// pointers); `index >= 0` is appended to the rendered name ("ring#2").
  /// `arg_key`/`arg_val` attach one integer argument rendered as Chrome
  /// "args":{key: value} (arg_key must also be a literal; nullptr = none) —
  /// how the scheduler publishes per-unit priority and bypass counts.
  /// Callers gate on enabled() — TraceSpan and the AIACC_TRACE_* macros do.
  void RecordSpan(const char* cat, const char* name, std::int64_t begin_ns,
                  std::int64_t end_ns, int index = -1,
                  const char* arg_key = nullptr,
                  std::int64_t arg_val = 0) noexcept;
  void RecordInstant(const char* cat, const char* name, int index = -1,
                     const char* arg_key = nullptr,
                     std::int64_t arg_val = 0) noexcept;

  /// Record one end of a cross-lane causal edge on the calling thread's
  /// lane (rendered as a Chrome flow event — ph "s" for the producing side,
  /// ph "f" for the consumer). `flow_id` names the edge; the transport
  /// layer derives it from the frame's trace stamp so both ends agree
  /// across ranks without coordination (telemetry/trace_context.h).
  void RecordFlow(const char* cat, const char* name, std::uint64_t flow_id,
                  bool start) noexcept;

  /// Drain every thread ring into portable events (seconds, lane = thread
  /// label at first record). Quiesce first — see the header comment.
  void Collect(std::vector<SpanEvent>* spans,
               std::vector<InstantEvent>* instants) const;
  /// Drain everything — spans, instants, flow events, and per-lane
  /// ring-overwrite counts — into one renderable document.
  void Collect(ChromeTraceDoc* doc) const;

  [[nodiscard]] std::string ToChromeJson() const;
  Status WriteTo(const std::string& path) const;
  /// Busy-time union over collected spans matching a track or category.
  [[nodiscard]] double BusyTime(const std::string& key) const;

  /// Events overwritten because a thread ring wrapped (0 = trace complete).
  [[nodiscard]] std::uint64_t dropped() const;
  /// Forget all recorded events (ring heads reset; lanes stay registered).
  void Clear();

  /// Process-wide tracer; AIACC_TRACE/AIACC_TRACE_LEVEL configure it on
  /// telemetry::InitFromEnv (telemetry.h).
  static RuntimeTracer& Global();

 private:
  struct Event {
    const char* cat;   // literal
    const char* name;  // literal
    std::int64_t begin_ns;
    std::int64_t end_ns;  // == begin_ns for instants
    std::int32_t index;   // -1 = none
    std::uint8_t kind;    // kSpan / kInstant / kFlowStart / kFlowEnd
    std::uint64_t flow_id;  // flow events only
    const char* arg_key;    // literal; nullptr = no argument
    std::int64_t arg_val;
  };
  static constexpr std::uint8_t kSpan = 0;
  static constexpr std::uint8_t kInstant = 1;
  static constexpr std::uint8_t kFlowStart = 2;
  static constexpr std::uint8_t kFlowEnd = 3;

  struct ThreadRing {
    ThreadRing(std::string lane_label, std::size_t capacity)
        : label(std::move(lane_label)), events(capacity) {}
    const std::string label;
    std::vector<Event> events;
    /// Total events ever recorded; slot = head % capacity. Atomic so Clear
    /// and dropped() tolerate concurrent bumps; event payloads themselves
    /// are only safe to read after the owner quiesces.
    std::atomic<std::uint64_t> head{0};
    /// Process counter `telemetry.trace.dropped_events@<lane>` bumped on
    /// every overwrite, so ring overflow is visible on the metrics surface
    /// while the run is still alive (the trace JSON also carries per-lane
    /// totals — see Collect(ChromeTraceDoc*)). Registered lazily on the
    /// first overwrite: Push holds no lock, so the registry mutex (same
    /// rank as the ring mutex) is safe to take there. Only the owning
    /// thread writes it.
    Counter* dropped_counter = nullptr;
  };

  /// The calling thread's ring, registering it on first use.
  ThreadRing& LocalRing() noexcept;
  void Push(const Event& e) noexcept;
  void CollectImpl(std::vector<SpanEvent>* spans,
                   std::vector<InstantEvent>* instants,
                   std::vector<FlowEvent>* flows,
                   std::map<std::string, std::uint64_t>* dropped_by_track)
      const;

  const Options options_;
  const std::uint64_t tracer_id_;  // distinguishes tracer instances in the
                                   // thread-local ring cache
  std::atomic<int> level_{0};
  const std::chrono::steady_clock::time_point origin_;

  mutable common::Mutex mu_{"trace-rings", common::lock_rank::kTelemetry};
  std::vector<std::unique_ptr<ThreadRing>> rings_ GUARDED_BY(mu_);
};

/// RAII span: stamps begin on construction, records on destruction. Free
/// when the tracer is below `level` (two relaxed loads, no clock read).
class TraceSpan {
 public:
  TraceSpan(RuntimeTracer& tracer, TraceLevel level, const char* cat,
            const char* name, int index = -1, const char* arg_key = nullptr,
            std::int64_t arg_val = 0) noexcept
      : tracer_(tracer.enabled(level) ? &tracer : nullptr),
        cat_(cat),
        name_(name),
        index_(index),
        arg_key_(arg_key),
        arg_val_(arg_val),
        begin_ns_(tracer_ != nullptr ? tracer_->NowNs() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->RecordSpan(cat_, name_, begin_ns_, tracer_->NowNs(), index_,
                          arg_key_, arg_val_);
    }
  }

 private:
  RuntimeTracer* const tracer_;
  const char* const cat_;
  const char* const name_;
  const int index_;
  const char* const arg_key_;
  const std::int64_t arg_val_;
  const std::int64_t begin_ns_;
};

}  // namespace aiacc::telemetry

// Statement macros against the global tracer. Compile to nothing under
// -DAIACC_TELEMETRY_DISABLED (CMake option AIACC_TELEMETRY=OFF).
#define AIACC_TRACE_CONCAT_IMPL(a, b) a##b
#define AIACC_TRACE_CONCAT(a, b) AIACC_TRACE_CONCAT_IMPL(a, b)

#if defined(AIACC_TELEMETRY_DISABLED)

#define AIACC_TRACE_SPAN(cat, name) ((void)0)
#define AIACC_TRACE_SPAN_IDX(cat, name, idx) ((void)0)
#define AIACC_TRACE_SPAN_V(cat, name) ((void)0)
#define AIACC_TRACE_INSTANT(cat, name) ((void)0)
#define AIACC_TRACE_INSTANT_V(cat, name) ((void)0)

#else

/// Phase-level span covering the rest of the enclosing scope.
#define AIACC_TRACE_SPAN(cat, name)                                      \
  ::aiacc::telemetry::TraceSpan AIACC_TRACE_CONCAT(aiacc_trace_span_,    \
                                                   __COUNTER__)(         \
      ::aiacc::telemetry::RuntimeTracer::Global(),                       \
      ::aiacc::telemetry::TraceLevel::kPhase, cat, name)

/// Phase-level span with a small integer qualifier (channel, ring, bucket).
#define AIACC_TRACE_SPAN_IDX(cat, name, idx)                             \
  ::aiacc::telemetry::TraceSpan AIACC_TRACE_CONCAT(aiacc_trace_span_,    \
                                                   __COUNTER__)(         \
      ::aiacc::telemetry::RuntimeTracer::Global(),                       \
      ::aiacc::telemetry::TraceLevel::kPhase, cat, name, idx)

/// Verbose-level span (per-step transport events).
#define AIACC_TRACE_SPAN_V(cat, name)                                    \
  ::aiacc::telemetry::TraceSpan AIACC_TRACE_CONCAT(aiacc_trace_span_,    \
                                                   __COUNTER__)(         \
      ::aiacc::telemetry::RuntimeTracer::Global(),                       \
      ::aiacc::telemetry::TraceLevel::kVerbose, cat, name)

#define AIACC_TRACE_INSTANT(cat, name)                                   \
  do {                                                                   \
    auto& aiacc_trace_tracer = ::aiacc::telemetry::RuntimeTracer::Global(); \
    if (aiacc_trace_tracer.enabled(                                      \
            ::aiacc::telemetry::TraceLevel::kPhase)) {                   \
      aiacc_trace_tracer.RecordInstant(cat, name);                       \
    }                                                                    \
  } while (0)

#define AIACC_TRACE_INSTANT_V(cat, name)                                 \
  do {                                                                   \
    auto& aiacc_trace_tracer = ::aiacc::telemetry::RuntimeTracer::Global(); \
    if (aiacc_trace_tracer.enabled(                                      \
            ::aiacc::telemetry::TraceLevel::kVerbose)) {                 \
      aiacc_trace_tracer.RecordInstant(cat, name);                       \
    }                                                                    \
  } while (0)

#endif  // AIACC_TELEMETRY_DISABLED
