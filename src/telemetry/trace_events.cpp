#include "telemetry/trace_events.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"

namespace aiacc::telemetry {
namespace {

/// Minimal JSON string escaping (quotes/backslashes/control chars).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToChromeJson(const ChromeTraceDoc& doc) {
  // Stable track -> tid mapping in first-appearance order. Tids are unique
  // across the whole document (not per pid) so a lane keeps its tid even if
  // a merge re-homes it under another process.
  std::map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()));
    return it->second;
  };
  auto pid_of = [&](const std::string& track) {
    auto it = doc.track_pids.find(track);
    return it == doc.track_pids.end() ? 1 : it->second;
  };

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  auto cat_field = [&](const std::string& cat) {
    if (!cat.empty()) out << "\"cat\":\"" << Escape(cat) << "\",";
  };
  auto args_field = [&](const std::string& key, std::int64_t val) {
    if (!key.empty()) {
      out << "\"args\":{\"" << Escape(key) << "\":" << val << "},";
    }
  };
  for (const SpanEvent& s : doc.spans) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":" << pid_of(s.track)
        << ",\"tid\":" << tid_of(s.track) << ",";
    cat_field(s.cat);
    args_field(s.arg_key, s.arg_val);
    out << "\"name\":\"" << Escape(s.name) << "\",\"ts\":" << s.begin * 1e6
        << ",\"dur\":" << (s.end - s.begin) * 1e6 << "}";
  }
  for (const InstantEvent& i : doc.instants) {
    sep();
    out << "{\"ph\":\"i\",\"pid\":" << pid_of(i.track)
        << ",\"tid\":" << tid_of(i.track) << ",";
    cat_field(i.cat);
    args_field(i.arg_key, i.arg_val);
    out << "\"s\":\"t\",\"name\":\"" << Escape(i.name)
        << "\",\"ts\":" << i.time * 1e6 << "}";
  }
  // Flow edges: the start binds to the slice enclosing it ("s"), each end
  // binds to its enclosing slice with bp:"e" (Chrome's "bind to enclosing"
  // mode, required for f events whose slice began before the flow did).
  for (const FlowEvent& f : doc.flows) {
    sep();
    out << "{\"ph\":\"" << (f.start ? 's' : 'f') << "\",";
    if (!f.start) out << "\"bp\":\"e\",";
    out << "\"pid\":" << pid_of(f.track) << ",\"tid\":" << tid_of(f.track)
        << ",";
    cat_field(f.cat);
    out << "\"name\":\"" << Escape(f.name) << "\",\"id\":\"0x" << std::hex
        << f.id << std::dec << "\",\"ts\":" << f.time * 1e6 << "}";
  }
  // Track-name metadata so viewers show human-readable lanes. Lanes that
  // only appear in the drop accounting still get a tid (and so a name).
  for (const auto& [track, count] : doc.dropped_by_track) tid_of(track);
  for (const auto& [track, tid] : tids) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid_of(track) << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << Escape(track) << "\"}}";
  }
  for (const auto& [pid, name] : doc.process_names) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << Escape(name) << "\"}}";
  }
  // Per-lane ring-overwrite counts (satellite: truncated traces must be
  // detectable from the JSON alone).
  std::uint64_t dropped_total = 0;
  for (const auto& [track, count] : doc.dropped_by_track) {
    dropped_total += count;
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid_of(track)
        << ",\"tid\":" << tid_of(track)
        << ",\"name\":\"trace_dropped_events\",\"args\":{\"count\":" << count
        << "}}";
  }
  out << "],\"otherData\":{\"dropped_events\":" << dropped_total << "}}";
  return out.str();
}

std::string ToChromeJson(const std::vector<SpanEvent>& spans,
                         const std::vector<InstantEvent>& instants) {
  ChromeTraceDoc doc;
  doc.spans = spans;
  doc.instants = instants;
  return ToChromeJson(doc);
}

Status WriteChromeTrace(const std::string& path, const ChromeTraceDoc& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + path);
  const std::string json = ToChromeJson(doc);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) return DataLoss("short write");
  return Status::Ok();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanEvent>& spans,
                        const std::vector<InstantEvent>& instants) {
  ChromeTraceDoc doc;
  doc.spans = spans;
  doc.instants = instants;
  return WriteChromeTrace(path, doc);
}

double BusyTime(const std::vector<SpanEvent>& spans, const std::string& key) {
  // Merge overlapping spans that match the key and sum their union.
  std::vector<std::pair<double, double>> intervals;
  for (const SpanEvent& s : spans) {
    if (s.track == key || s.cat == key) intervals.emplace_back(s.begin, s.end);
  }
  std::sort(intervals.begin(), intervals.end());
  double busy = 0.0;
  double cur_begin = 0.0;
  double cur_end = -1.0;
  for (const auto& [b, e] : intervals) {
    if (b > cur_end) {
      if (cur_end > cur_begin) busy += cur_end - cur_begin;
      cur_begin = b;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (cur_end > cur_begin) busy += cur_end - cur_begin;
  return busy;
}

std::vector<TrackSummary> SummarizeSpans(const std::vector<SpanEvent>& spans) {
  std::map<std::string, std::vector<double>> durations;
  for (const SpanEvent& s : spans) {
    durations[s.cat.empty() ? s.track : s.cat].push_back(s.end - s.begin);
  }
  std::vector<TrackSummary> rows;
  rows.reserve(durations.size());
  for (auto& [key, ds] : durations) {
    TrackSummary row;
    row.key = key;
    row.count = ds.size();
    row.busy_seconds = BusyTime(spans, key);
    row.p50_seconds = PercentileInPlace(ds, 50.0);  // sorts ds once,
    row.p99_seconds = PercentileInPlace(ds, 99.0);  // second call is a lookup
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string SummaryTable(const std::vector<TrackSummary>& rows) {
  TablePrinter table({"track", "spans", "busy", "p50", "p99"});
  for (const TrackSummary& r : rows) {
    table.AddRow({r.key, std::to_string(r.count),
                  FormatDouble(r.busy_seconds * 1e3, 3) + " ms",
                  FormatDouble(r.p50_seconds * 1e6, 1) + " us",
                  FormatDouble(r.p99_seconds * 1e6, 1) + " us"});
  }
  return table.ToString();
}

}  // namespace aiacc::telemetry
