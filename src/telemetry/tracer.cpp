#include "telemetry/tracer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace aiacc::telemetry {
namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Metric scope for a lane label ('/' is not legal in a metric scope, so
/// "r3/comm1" becomes "r3.comm1").
std::string DroppedCounterName(const std::string& label) {
  std::string scope = label;
  std::replace(scope.begin(), scope.end(), '/', '.');
  return "telemetry.trace.dropped_events@" + scope;
}

/// Per-thread ring cache. One hot slot (the tracer this thread recorded to
/// last) plus a spill list, so a thread alternating between tracers (tests
/// use local tracers alongside Global) re-finds its ring without
/// re-registering. Tracer ids are never reused, so a stale entry for a
/// destroyed tracer can never be matched — only tolerated as dead weight.
struct TlsRings {
  std::uint64_t hot_id = 0;
  void* hot_ring = nullptr;
  std::vector<std::pair<std::uint64_t, void*>> all;
};

thread_local TlsRings t_rings;

}  // namespace

RuntimeTracer::RuntimeTracer(const Options& options)
    : options_(options),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      origin_(std::chrono::steady_clock::now()) {
  AIACC_CHECK(options_.ring_capacity > 0);
}

RuntimeTracer::~RuntimeTracer() = default;

void RuntimeTracer::Enable(TraceLevel level) {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::int64_t RuntimeTracer::NowNs() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

RuntimeTracer::ThreadRing& RuntimeTracer::LocalRing() noexcept {
  if (t_rings.hot_id == tracer_id_) {
    return *static_cast<ThreadRing*>(t_rings.hot_ring);
  }
  for (const auto& [id, ring] : t_rings.all) {
    if (id == tracer_id_) {
      t_rings.hot_id = id;
      t_rings.hot_ring = ring;
      return *static_cast<ThreadRing*>(ring);
    }
  }
  // First record from this thread: register a lane (cold path, allocates).
  std::string label = ThreadLogLabel();
  common::MutexLock lock(mu_);
  if (label.empty()) label = "thread-" + std::to_string(rings_.size());
  rings_.push_back(
      std::make_unique<ThreadRing>(std::move(label), options_.ring_capacity));
  ThreadRing* ring = rings_.back().get();
  t_rings.all.emplace_back(tracer_id_, ring);
  t_rings.hot_id = tracer_id_;
  t_rings.hot_ring = ring;
  return *ring;
}

void RuntimeTracer::Push(const Event& e) noexcept {
  ThreadRing& ring = LocalRing();
  const std::uint64_t seq = ring.head.fetch_add(1, std::memory_order_relaxed);
  if (seq >= ring.events.size()) {
    // Overwriting: make the truncation observable (satellite of the causal
    // tracing work — silent wraps made merged traces lie about coverage).
    if (ring.dropped_counter == nullptr) {
      ring.dropped_counter =
          &MetricsRegistry::Global().GetCounter(DroppedCounterName(ring.label));
    }
    ring.dropped_counter->Add();
  }
  ring.events[seq % ring.events.size()] = e;
}

void RuntimeTracer::RecordSpan(const char* cat, const char* name,
                               std::int64_t begin_ns, std::int64_t end_ns,
                               int index, const char* arg_key,
                               std::int64_t arg_val) noexcept {
  Push(Event{cat, name, begin_ns, end_ns, index, kSpan, 0, arg_key, arg_val});
}

void RuntimeTracer::RecordInstant(const char* cat, const char* name,
                                  int index, const char* arg_key,
                                  std::int64_t arg_val) noexcept {
  const std::int64_t now = NowNs();
  Push(Event{cat, name, now, now, index, kInstant, 0, arg_key, arg_val});
}

void RuntimeTracer::RecordFlow(const char* cat, const char* name,
                               std::uint64_t flow_id, bool start) noexcept {
  const std::int64_t now = NowNs();
  Push(Event{cat, name, now, now, -1, start ? kFlowStart : kFlowEnd,
             flow_id, nullptr, 0});
}

void RuntimeTracer::Collect(std::vector<SpanEvent>* spans,
                            std::vector<InstantEvent>* instants) const {
  CollectImpl(spans, instants, nullptr, nullptr);
}

void RuntimeTracer::Collect(ChromeTraceDoc* doc) const {
  CollectImpl(&doc->spans, &doc->instants, &doc->flows,
              &doc->dropped_by_track);
}

void RuntimeTracer::CollectImpl(
    std::vector<SpanEvent>* spans, std::vector<InstantEvent>* instants,
    std::vector<FlowEvent>* flows,
    std::map<std::string, std::uint64_t>* dropped_by_track) const {
  common::MutexLock lock(mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t n =
        std::min<std::uint64_t>(head, ring->events.size());
    if (dropped_by_track != nullptr && head > ring->events.size()) {
      (*dropped_by_track)[ring->label] += head - ring->events.size();
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = ring->events[i];
      std::string name = e.name;
      if (e.index >= 0) name += "#" + std::to_string(e.index);
      const std::string arg_key =
          e.arg_key != nullptr ? std::string(e.arg_key) : std::string();
      switch (e.kind) {
        case kInstant:
          if (instants != nullptr) {
            instants->push_back(InstantEvent{ring->label, std::move(name),
                                             e.begin_ns * 1e-9, e.cat,
                                             arg_key, e.arg_val});
          }
          break;
        case kFlowStart:
        case kFlowEnd:
          if (flows != nullptr) {
            flows->push_back(FlowEvent{ring->label, std::move(name),
                                       e.begin_ns * 1e-9, e.cat, e.flow_id,
                                       e.kind == kFlowStart});
          }
          break;
        default:
          if (spans != nullptr) {
            spans->push_back(SpanEvent{ring->label, std::move(name),
                                       e.begin_ns * 1e-9, e.end_ns * 1e-9,
                                       e.cat, arg_key, e.arg_val});
          }
      }
    }
  }
}

std::string RuntimeTracer::ToChromeJson() const {
  ChromeTraceDoc doc;
  Collect(&doc);
  return telemetry::ToChromeJson(doc);
}

Status RuntimeTracer::WriteTo(const std::string& path) const {
  ChromeTraceDoc doc;
  Collect(&doc);
  return WriteChromeTrace(path, doc);
}

double RuntimeTracer::BusyTime(const std::string& key) const {
  std::vector<SpanEvent> spans;
  Collect(&spans, nullptr);
  return telemetry::BusyTime(spans, key);
}

std::uint64_t RuntimeTracer::dropped() const {
  common::MutexLock lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->events.size()) dropped += head - ring->events.size();
  }
  return dropped;
}

void RuntimeTracer::Clear() {
  common::MutexLock lock(mu_);
  for (const auto& ring : rings_) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace aiacc::telemetry
