// Process metrics for the threaded runtime: named counters, gauges, and
// fixed-bucket histograms behind one registry, so every subsystem (pool,
// transport, collectives, engine, autotuner) reports on a single surface.
//
// Hot-path contract: once a handle is obtained (registration takes the
// registry mutex once), Add/Set/Record are lock-free — a relaxed atomic
// fetch_add (counters, histogram buckets) or a CAS loop (gauges, histogram
// sums). Instrumentation sites cache the handle; nothing on the record path
// allocates or blocks.
//
// Naming scheme (DESIGN.md "Observability"): dot-separated
// `<layer>.<metric>`, with an optional scope suffix `@<scope>` for
// per-rank / per-arm splits (e.g. `engine.sync_rounds@r3`,
// `autotune.decisions@grid`). Snapshot::Aggregate() merges entries that
// differ only in scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace aiacc::telemetry {

/// Monotonic event count. Lock-free; wait-free on every common platform.
class Counter {
 public:
  void Add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written level (queue depth, best score, ...). Set is a store; Add
/// is a CAS loop (atomic<double> has no fetch_add portably until C++20
/// float atomics are everywhere).
class Gauge {
 public:
  void Set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void Add(double dx) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + dx,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Read-only view of a histogram at snapshot time. `counts[i]` is the
/// number of samples <= bounds[i] (and > bounds[i-1]); counts.back() is the
/// overflow bucket (> bounds.back()).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double Mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Approximate quantile (p in [0,100]) by linear interpolation inside the
  /// bucket containing the target rank. The overflow bucket clamps to its
  /// lower bound.
  [[nodiscard]] double Quantile(double p) const;
};

/// Fixed-bucket histogram. Bucket bounds are immutable after registration,
/// so Record is a read-only binary search plus two relaxed atomic updates.
class Histogram {
 public:
  /// `bounds` are the inclusive upper edges of the finite buckets, strictly
  /// increasing; one overflow bucket is added past the last edge.
  explicit Histogram(std::vector<double> bounds);

  void Record(double x) noexcept;
  [[nodiscard]] HistogramSnapshot Snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  void Reset() noexcept;

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket edges for latencies: `first, first*2, ...` (n edges).
[[nodiscard]] std::vector<double> ExponentialBounds(double first, int n,
                                                    double factor = 2.0);

/// `base` + "@" + scope, the registry's scoping convention.
[[nodiscard]] std::string Scoped(std::string_view base, std::string_view scope);
/// Per-rank convenience: `base@r<rank>`.
[[nodiscard]] std::string RankScoped(std::string_view base, int rank);

/// One registry entry at snapshot time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;      // kCounter
  double gauge = 0.0;             // kGauge
  HistogramSnapshot histogram;    // kHistogram
};

/// Point-in-time view of a registry. Order is name-sorted.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Value of a counter by exact name (0 when absent) — bench/test helper.
  [[nodiscard]] std::uint64_t CounterValue(std::string_view name) const;
  /// Merge entries whose names differ only in the `@scope` suffix: counters
  /// and histogram buckets sum, gauges keep the maximum.
  [[nodiscard]] RegistrySnapshot Aggregate() const;
  /// Fixed-width text table (AIACC_METRICS_DUMP=stderr).
  [[nodiscard]] std::string ToTable() const;
  /// {"metrics":[{"name":...,"type":...,...},...]} — validated by
  /// tools/trace_lint.py.
  [[nodiscard]] std::string ToJson() const;
};

/// Named metric registry. Registration is mutex-guarded and idempotent
/// (same name returns the same handle; a histogram re-registered with
/// different bounds keeps the original). Returned references stay valid for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Expose an externally-owned value (e.g. BufferPool's internal stats) as
  /// a counter in snapshots. `fn` runs under the registry mutex during
  /// Snapshot(): it must not block or acquire locks ranked at or below
  /// lock_rank::kTelemetry.
  void AttachCallback(const std::string& name,
                      std::function<std::uint64_t()> fn);

  [[nodiscard]] RegistrySnapshot Snapshot() const;
  /// Zero every owned counter/gauge/histogram (callbacks are external state
  /// and are not touched).
  void Reset();

  /// The process-wide registry (env-configured dumps read this one). First
  /// access also applies the AIACC_* telemetry env vars (telemetry.h).
  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> callback;
  };

  mutable common::Mutex mu_{"metrics-registry",
                            common::lock_rank::kTelemetry};
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace aiacc::telemetry
