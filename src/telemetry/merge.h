// Multi-rank trace alignment: merge N per-rank Chrome trace documents —
// each timestamped by its own rank's clock — into one timeline whose
// cross-rank flow edges are causally consistent (DESIGN.md §7).
//
// Clock-skew model. Every flow edge a→b observes
//
//     t_recv(b) − t_send(a) = delay + offset(b) − offset(a)
//
// where `delay` is the real one-way latency and `offset(r)` is rank r's
// clock offset. Per ordered rank pair the minimum observed difference
// estimates delay_min + offset(b) − offset(a); MergeTraces then solves for
// the offsets (rank 0 pinned to 0) and one shared minimum delay by least
// squares over those per-pair minima. Crucially this needs *no* round
// trips: a one-directional ring (rank r only ever sends to r+1) still
// yields a solvable system, because the per-pair minima around the cycle
// share the one delay unknown — NTP-style pairwise estimation would be
// underdetermined here.
//
// The corrected timeline subtracts each rank's offset from all its events.
// Residual per-edge violations (recv before send after correction) are
// bounded by how asymmetric the links' true minimum delays are; the report
// carries the worst one so callers and tools/trace_lint.py can assert it
// stays within tolerance instead of trusting the merge blindly.
#pragma once

#include <map>
#include <vector>

#include "telemetry/trace_events.h"

namespace aiacc::telemetry {

/// One rank's trace, timestamped by that rank's own clock.
struct RankTrace {
  int rank = 0;
  ChromeTraceDoc doc;
};

struct MergeReport {
  /// The aligned timeline: every lane renamed to "r<rank>/<lane>" (when
  /// not already rank-prefixed), homed under pid rank+1 with a
  /// "rank <rank>" process_name, all times offset-corrected.
  ChromeTraceDoc merged;
  /// Estimated clock offset per input trace (seconds, same order as the
  /// input; subtracted from that rank's events). offset[rank 0's index]=0.
  std::vector<double> offset_seconds;
  /// Matched cross-rank flow edges (start/end pairs) used for estimation.
  std::size_t flow_edges = 0;
  /// Flow starts without an end + ends without a start (dangling halves —
  /// ring overwrites or in-flight messages at collection time).
  std::size_t unmatched_flows = 0;
  /// Worst causal violation after correction: max over edges of
  /// t_send − t_recv, seconds. <= 0 means every edge is monotone; small
  /// positive values bound the links' min-delay asymmetry.
  double max_causality_violation = 0.0;
};

/// Merge per-rank traces into one aligned timeline. Input ranks must be
/// distinct; lanes keep their names when already "r<k>/"-prefixed.
MergeReport MergeTraces(const std::vector<RankTrace>& traces);

/// Split one document into per-rank documents by the "r<k>/" lane-label
/// prefix that SetThreadLogContext gives every engine/bench thread. Lanes
/// without a rank prefix land under key -1 (caller decides their fate).
std::map<int, ChromeTraceDoc> SplitByRankLabel(const ChromeTraceDoc& doc);

/// Shift every event time in `doc` by `seconds` (test/bench helper: apply
/// a synthetic per-rank clock offset before merging, so the estimator has
/// real skew to recover inside one process).
void ShiftTimes(ChromeTraceDoc& doc, double seconds);

}  // namespace aiacc::telemetry
