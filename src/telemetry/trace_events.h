// Shared trace-event model and Chrome trace-event JSON emitter. Two
// producers feed it: the simulated engine's sim::Tracer (simulated seconds,
// one lane per logical track) and the threaded runtime's RuntimeTracer
// (wall-clock seconds, one lane per recording thread, semantic category per
// span). Both render through the same functions here so the sim and the
// real runtime emit one schema — a trace from either opens identically in
// chrome://tracing / Perfetto and passes tools/trace_lint.py.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace aiacc::telemetry {

/// A closed interval on one lane. `track` is the display lane (thread name
/// in the viewer); `cat` is an optional semantic category ("comm",
/// "compute", ...) used for filtering and overlap math. Times in seconds.
struct SpanEvent {
  std::string track;
  std::string name;
  double begin = 0.0;
  double end = 0.0;
  std::string cat;
  /// Optional single argument rendered as Chrome "args":{key: value}
  /// (empty key = no args). Integer-valued: producers record counters and
  /// ids (priority, bypass counts), never strings, so the rings stay
  /// fixed-size.
  std::string arg_key;
  std::int64_t arg_val = 0;
};

/// A point event on one lane.
struct InstantEvent {
  std::string track;
  std::string name;
  double time = 0.0;
  std::string cat;
  /// Optional single argument (same contract as SpanEvent::arg_key).
  std::string arg_key;
  std::int64_t arg_val = 0;
};

/// One end of a cross-lane causal edge (Chrome flow event). A flow `id`
/// names the edge: the producing side emits `start == true` (ph "s",
/// usually a transport send), every consuming side emits `start == false`
/// (ph "f", the matching recv). Viewers draw an arrow from the slice
/// enclosing the start to the slice enclosing the end, which is how a recv
/// span on rank 3 points back at the send span on rank 2 that fed it.
struct FlowEvent {
  std::string track;
  std::string name;
  double time = 0.0;
  std::string cat;
  std::uint64_t id = 0;
  bool start = true;
};

/// A renderable trace: events plus the lane/process bookkeeping the Chrome
/// format needs once traces from several ranks share one file. Tracks
/// absent from `track_pids` render under pid 1 (the single-process case);
/// `dropped_by_track` carries per-lane ring-overwrite counts so a
/// truncated trace is detectable from the JSON alone (emitted as
/// "trace_dropped_events" metadata records plus an otherData total).
struct ChromeTraceDoc {
  std::vector<SpanEvent> spans;
  std::vector<InstantEvent> instants;
  std::vector<FlowEvent> flows;
  std::map<std::string, int> track_pids;       // track -> pid (absent = 1)
  std::map<int, std::string> process_names;    // pid -> process_name label
  std::map<std::string, std::uint64_t> dropped_by_track;
};

/// Chrome trace-event format: {"traceEvents":[{"ph":"X",...},...]}.
/// Tracks become thread ids (tid) in first-appearance order, seconds become
/// microseconds, and a thread_name metadata record labels every lane.
[[nodiscard]] std::string ToChromeJson(const std::vector<SpanEvent>& spans,
                                       const std::vector<InstantEvent>& instants);
[[nodiscard]] std::string ToChromeJson(const ChromeTraceDoc& doc);

/// Write the rendered JSON to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<SpanEvent>& spans,
                        const std::vector<InstantEvent>& instants);
Status WriteChromeTrace(const std::string& path, const ChromeTraceDoc& doc);

/// Union of busy time over the spans whose track OR category equals `key`
/// (overlapping spans are merged, not double-counted). The overlap
/// assertions in tests are written against this.
[[nodiscard]] double BusyTime(const std::vector<SpanEvent>& spans,
                              const std::string& key);

/// Per-track/category duration statistics for a flushed trace: span count,
/// total busy seconds, and p50/p99 span durations (PercentileInPlace over
/// the collected durations — no copies).
struct TrackSummary {
  std::string key;   // track or category
  std::size_t count = 0;
  double busy_seconds = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Summaries grouped by category when set, else by track; sorted by key.
[[nodiscard]] std::vector<TrackSummary> SummarizeSpans(
    const std::vector<SpanEvent>& spans);

/// Render summaries as the repo's fixed-width table (bench `--trace` output).
[[nodiscard]] std::string SummaryTable(const std::vector<TrackSummary>& rows);

}  // namespace aiacc::telemetry
