// Process-level wiring for the telemetry layer: environment-variable
// configuration, the global tracer/registry bootstrap, and dump helpers.
//
// Env knobs (read once, on first touch of either Global()):
//   AIACC_TRACE=<file.json>     enable the global RuntimeTracer and write a
//                               Chrome trace to <file.json> at process exit
//   AIACC_TRACE_LEVEL=phase|verbose|0|1|2
//                               tracing detail (default phase)
//   AIACC_METRICS_DUMP=stderr|<file.json>
//                               dump the global registry at exit: a text
//                               table to stderr, or JSON to a file
//   AIACC_METRICS_PERIOD_MS=<n> ask the engine's service thread to also
//                               dump the registry every n ms (0 = exit only)
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace aiacc::telemetry {

struct EnvOptions {
  std::string trace_path;                        // empty = tracing off
  TraceLevel trace_level = TraceLevel::kPhase;
  std::string metrics_dump;                      // "", "stderr", or a path
  int metrics_period_ms = 0;                     // 0 = dump at exit only
};

/// Parse telemetry options from an env lookup function (tests inject their
/// own; the nullary overload reads the real environment).
EnvOptions ParseEnvOptions(
    const std::function<const char*(const char*)>& getenv_fn);
EnvOptions ParseEnvOptions();

/// Apply the env options to the global tracer/registry exactly once per
/// process: enable tracing, attach the BufferPool callback counters, and
/// register the at-exit trace write / metrics dump. Idempotent and
/// thread-safe; RuntimeTracer::Global() and MetricsRegistry::Global() call
/// it on first use, so merely touching telemetry opts into the env knobs.
void InitFromEnvOnce();

/// The options InitFromEnvOnce applied (parsed once, then immutable).
const EnvOptions& GlobalEnvOptions();

/// Periodic dump interval for the engine's service thread (0 = disabled).
int MetricsDumpPeriodMs();

/// Dump a snapshot per the AIACC_METRICS_DUMP convention: "stderr" renders
/// the text table to stderr, anything else is written as JSON to that path.
Status DumpMetrics(const RegistrySnapshot& snapshot, const std::string& dest);

}  // namespace aiacc::telemetry
