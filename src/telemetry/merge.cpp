#include "telemetry/merge.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <optional>
#include <string>

#include "common/logging.h"

namespace aiacc::telemetry {
namespace {

/// Rank from a "r<k>/..." lane label, nullopt otherwise.
std::optional<int> LaneRank(const std::string& track) {
  if (track.size() < 3 || track[0] != 'r') return std::nullopt;
  std::size_t i = 1;
  while (i < track.size() && std::isdigit(static_cast<unsigned char>(track[i]))) {
    ++i;
  }
  if (i == 1 || i >= track.size() || track[i] != '/') return std::nullopt;
  return std::stoi(track.substr(1, i - 1));
}

std::string RankedTrack(int rank, const std::string& track) {
  const std::optional<int> tagged = LaneRank(track);
  if (tagged.has_value() && *tagged == rank) return track;
  return "r" + std::to_string(rank) + "/" + track;
}

struct FlowHalf {
  std::size_t trace_index;  // into the input vector
  double time;
};

}  // namespace

std::map<int, ChromeTraceDoc> SplitByRankLabel(const ChromeTraceDoc& doc) {
  std::map<int, ChromeTraceDoc> out;
  auto rank_of = [](const std::string& track) {
    return LaneRank(track).value_or(-1);
  };
  for (const SpanEvent& s : doc.spans) out[rank_of(s.track)].spans.push_back(s);
  for (const InstantEvent& i : doc.instants) {
    out[rank_of(i.track)].instants.push_back(i);
  }
  for (const FlowEvent& f : doc.flows) out[rank_of(f.track)].flows.push_back(f);
  for (const auto& [track, count] : doc.dropped_by_track) {
    out[rank_of(track)].dropped_by_track[track] += count;
  }
  return out;
}

void ShiftTimes(ChromeTraceDoc& doc, double seconds) {
  for (SpanEvent& s : doc.spans) {
    s.begin += seconds;
    s.end += seconds;
  }
  for (InstantEvent& i : doc.instants) i.time += seconds;
  for (FlowEvent& f : doc.flows) f.time += seconds;
}

MergeReport MergeTraces(const std::vector<RankTrace>& traces) {
  MergeReport report;
  const std::size_t n = traces.size();
  report.offset_seconds.assign(n, 0.0);
  if (n == 0) return report;

  // Pair flow halves by id: one start (the send) and its ends (a recv per
  // consumer; normally exactly one).
  std::map<std::uint64_t, FlowHalf> starts;
  std::map<std::uint64_t, std::vector<FlowHalf>> ends;
  for (std::size_t t = 0; t < n; ++t) {
    for (const FlowEvent& f : traces[t].doc.flows) {
      if (f.start) {
        starts.emplace(f.id, FlowHalf{t, f.time});
      } else {
        ends[f.id].push_back(FlowHalf{t, f.time});
      }
    }
  }

  // Per ordered trace pair: minimum observed (recv − send) difference.
  struct Edge {
    std::size_t a, b;
    double min_delta;
  };
  std::map<std::pair<std::size_t, std::size_t>, double> min_delta;
  for (const auto& [id, start] : starts) {
    auto it = ends.find(id);
    if (it == ends.end()) {
      ++report.unmatched_flows;
      continue;
    }
    for (const FlowHalf& end : it->second) {
      ++report.flow_edges;
      if (end.trace_index == start.trace_index) continue;  // same clock
      const auto key = std::make_pair(start.trace_index, end.trace_index);
      const double delta = end.time - start.time;
      auto [slot, inserted] = min_delta.emplace(key, delta);
      if (!inserted) slot->second = std::min(slot->second, delta);
    }
  }
  for (const auto& [id, halves] : ends) {
    if (starts.find(id) == starts.end()) {
      report.unmatched_flows += halves.size();
    }
  }

  std::vector<Edge> edges;
  edges.reserve(min_delta.size());
  for (const auto& [key, delta] : min_delta) {
    edges.push_back(Edge{key.first, key.second, delta});
  }

  // Least squares for offsets o (o_0 pinned) and one shared min delay d:
  // minimize sum over pairs of (min_delta_ab − (o_b − o_a) − d)^2 by
  // Gauss-Seidel sweeps. The system is tiny (ranks x pairs), convergence
  // is geometric; 200 sweeps is far past fixed-point at double precision.
  std::vector<double>& o = report.offset_seconds;
  double d = 0.0;
  if (!edges.empty()) {
    d = std::numeric_limits<double>::infinity();
    for (const Edge& e : edges) d = std::min(d, e.min_delta);
    for (int sweep = 0; sweep < 200; ++sweep) {
      double d_sum = 0.0;
      for (const Edge& e : edges) d_sum += e.min_delta - (o[e.b] - o[e.a]);
      d = d_sum / static_cast<double>(edges.size());
      for (std::size_t r = 1; r < n; ++r) {
        double sum = 0.0;
        int count = 0;
        for (const Edge& e : edges) {
          if (e.b == r) {
            sum += o[e.a] + e.min_delta - d;
            ++count;
          } else if (e.a == r) {
            sum += o[e.b] - e.min_delta + d;
            ++count;
          }
        }
        if (count > 0) o[r] = sum / count;
      }
    }
    // Physical delays are non-negative; a negative estimate only happens
    // when every pair's minimum is dominated by noise, and clamping keeps
    // the corrected edges from being pushed backwards systematically.
    if (d < 0.0) d = 0.0;
  }

  // Assemble the merged timeline: rename lanes, re-home under per-rank
  // pids, subtract offsets.
  for (std::size_t t = 0; t < n; ++t) {
    const int rank = traces[t].rank;
    const int pid = rank + 1;
    const double off = o[t];
    report.merged.process_names[pid] = "rank " + std::to_string(rank);
    auto add_track = [&](const std::string& track) {
      std::string named = RankedTrack(rank, track);
      report.merged.track_pids[named] = pid;
      return named;
    };
    for (const SpanEvent& s : traces[t].doc.spans) {
      report.merged.spans.push_back(
          SpanEvent{add_track(s.track), s.name, s.begin - off, s.end - off,
                    s.cat, s.arg_key, s.arg_val});
    }
    for (const InstantEvent& i : traces[t].doc.instants) {
      report.merged.instants.push_back(InstantEvent{
          add_track(i.track), i.name, i.time - off, i.cat, i.arg_key,
          i.arg_val});
    }
    for (const FlowEvent& f : traces[t].doc.flows) {
      report.merged.flows.push_back(FlowEvent{add_track(f.track), f.name,
                                              f.time - off, f.cat, f.id,
                                              f.start});
    }
    for (const auto& [track, count] : traces[t].doc.dropped_by_track) {
      report.merged.dropped_by_track[RankedTrack(rank, track)] += count;
    }
  }

  // Worst remaining causal violation over the corrected edges.
  for (const auto& [id, start] : starts) {
    auto it = ends.find(id);
    if (it == ends.end()) continue;
    const double send = start.time - o[start.trace_index];
    for (const FlowHalf& end : it->second) {
      const double recv = end.time - o[end.trace_index];
      report.max_causality_violation =
          std::max(report.max_causality_violation, send - recv);
    }
  }
  return report;
}

}  // namespace aiacc::telemetry
