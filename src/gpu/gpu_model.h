// GPU device model (substitution for real V100s, see DESIGN.md §1).
//
// Two behaviours matter for reproducing the paper:
//   1. Compute time. Forward/backward duration is FLOPs / effective
//      throughput, with an achieved-efficiency factor (DNN kernels on a V100
//      reach ~25-35% of peak fp32 in practice; we calibrate ResNet-50 at
//      batch 64 to ~370 images/s, matching published single-GPU numbers).
//   2. Concurrent communication streams. CUDA streams map to SMs; while
//      compute kernels occupy most SMs, only a few comm kernels co-schedule.
//      This caps how many concurrent all-reduce units a worker can drive
//      during backward — the paper's explanation for why compute-intensive
//      models limit stream counts (§VIII-A) and why small batches leave more
//      room for streams (§VII-D footnote 5).
#pragma once

#include <algorithm>
#include <cmath>

namespace aiacc::gpu {

struct GpuParams {
  /// Peak fp32 throughput (V100: 15.7 TFLOP/s).
  double peak_flops = 15.7e12;
  /// Fraction of peak a well-tuned DNN kernel mix achieves. Calibrated so a
  /// V100 runs ResNet-50 (batch 64, 2*MAC FLOPs convention) at ~360 images/s,
  /// matching published single-GPU fp32 numbers.
  double achieved_efficiency = 0.55;
  /// Streaming multiprocessors on the device (V100: 80).
  int num_sms = 80;
  /// SMs a communication kernel (ring copy/reduce + proxy) occupies.
  int sms_per_comm_stream = 3;
  /// Kernel launch + stream synchronization overhead per dispatched unit.
  double kernel_launch_overhead = 8e-6;
  /// Effective rate of the optimizer update (bytes of parameters per sec);
  /// fused SGD/Adam kernels are memory-bound at ~HBM bandwidth / 3 passes.
  double optimizer_update_rate = 250e9;
  /// Host-CPU optimizer rate for the CPU-offload extension (paper §IX
  /// "Utilizing multi-core CPUs"): multi-core vectorized update, DDR-bound.
  double cpu_optimizer_update_rate = 30e9;
  /// PCIe rate for shipping updated parameters back to the GPU when the
  /// optimizer runs on the CPU.
  double pcie_upload_rate = 12e9;
};

class GpuModel {
 public:
  explicit GpuModel(GpuParams params = {}) : params_(params) {}

  [[nodiscard]] const GpuParams& params() const noexcept { return params_; }

  /// Sustained FLOP/s for DNN kernels.
  [[nodiscard]] double EffectiveFlops() const noexcept {
    return params_.peak_flops * params_.achieved_efficiency;
  }

  /// Seconds to execute `flops` of DNN compute.
  [[nodiscard]] double ComputeTime(double flops) const noexcept {
    return flops / EffectiveFlops();
  }

  /// Maximum concurrent communication streams the hardware scheduler will
  /// co-dispatch. `sm_busy_fraction` is the share of SMs held by compute
  /// kernels right now (0 when the GPU is idle in the comm tail). At least
  /// one stream always makes progress (it time-slices if necessary).
  [[nodiscard]] int UsableCommStreams(double sm_busy_fraction) const noexcept {
    const double free_sms =
        static_cast<double>(params_.num_sms) *
        std::clamp(1.0 - sm_busy_fraction, 0.0, 1.0);
    const int slots =
        static_cast<int>(free_sms) / std::max(1, params_.sms_per_comm_stream);
    return std::max(1, slots);
  }

  /// Seconds for the optimizer to apply updates to `param_bytes` of weights.
  [[nodiscard]] double OptimizerUpdateTime(double param_bytes) const noexcept {
    return param_bytes / params_.optimizer_update_rate;
  }

  /// CPU-offloaded update (§IX): gradients already sit in host memory on the
  /// TCP path, so the cost is the CPU update pass plus uploading the fresh
  /// parameters over PCIe. Frees GPU memory; the paper cautions the
  /// transfer can become the bottleneck — this model makes that visible.
  [[nodiscard]] double CpuOffloadUpdateTime(double param_bytes) const noexcept {
    return param_bytes / params_.cpu_optimizer_update_rate +
           param_bytes / params_.pcie_upload_rate;
  }

 private:
  GpuParams params_;
};

}  // namespace aiacc::gpu
