// Timed collectives on the simulated cloud fabric.
//
// Fluid model: a ring all-reduce over ranks spanning hosts H loads every
// NIC in H simultaneously; each adjacency carries 2*(n-1)/n * S bytes for a
// unit of S bytes per rank. We therefore represent one all-reduce unit as a
// single macro-flow across all loaded links, with the 2(n-1) sequential hop
// latencies folded into the start delay. Concurrent units — AIACC's multiple
// streams, each capped at the single-stream TCP/RDMA rate — then share the
// NICs by max-min fairness, which is precisely the multiplexing the paper
// exploits. A step-level "detailed" ring is provided to validate the fluid
// approximation at small scales (tests assert they agree).
//
// Units may carry real per-rank float payloads; the reduction is performed
// with real arithmetic when the simulated operation completes, so timing and
// numerics come from the same code path.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "collective/ops.h"
#include "net/fabric.h"

namespace aiacc::collective {

enum class Algorithm : std::uint8_t { kRing, kHierarchical };

const char* ToString(Algorithm alg);

class SimCollectives {
 public:
  explicit SimCollectives(net::CloudFabric& fabric) : fabric_(fabric) {}

  struct Unit {
    /// Bytes contributed by each participating rank.
    double bytes_per_rank = 0.0;
    /// Participating global ranks; empty = all ranks in the topology.
    std::vector<int> ranks;
    /// Optional real payloads (one per participating rank, equal lengths).
    /// May be empty for descriptor-only (timing) units.
    std::vector<std::span<float>> buffers;
    ReduceOp op = ReduceOp::kAvg;
    Algorithm algorithm = Algorithm::kRing;
    /// Invoked (on the simulation engine) when the unit completes; the
    /// argument is the completion time.
    std::function<void(double)> on_done;
  };

  /// Launch an all-reduce unit now (simulated time). Many units may be in
  /// flight at once; each behaves as one communication stream.
  void Start(Unit unit);

  /// Analytic completion time of a ring/hierarchical all-reduce on an
  /// otherwise idle network (used by the auto-tuner's seed model and tests).
  [[nodiscard]] double EstimateTime(double bytes_per_rank,
                                    Algorithm algorithm) const;

  /// Timed ring-pipelined broadcast of `bytes` from `root` to every rank in
  /// `ranks` (empty = all). Used by elastic re-deployment: a joining worker
  /// receives the current parameters before entering training.
  void Broadcast(double bytes, int root, std::vector<int> ranks,
                 std::function<void(double)> on_done);

  /// Step-level ring all-reduce: schedules each of the 2(n-1) ring steps as
  /// n point-to-point flows with a barrier between steps. Only for
  /// validation at small scales (O(n^2) flows).
  void StartDetailedRing(Unit unit);

  /// Count of completed units (diagnostics).
  [[nodiscard]] std::uint64_t CompletedUnits() const noexcept {
    return completed_units_;
  }

 private:
  struct Participants {
    std::vector<int> ranks;
    std::vector<int> hosts;        // distinct hosts, ascending
    bool multi_host = false;
  };
  Participants ResolveParticipants(const std::vector<int>& ranks) const;

  /// Apply the real reduction across unit buffers (all ranks receive the
  /// combined result), then fire on_done.
  void CompleteUnit(Unit& unit);

  void StartRingPhase(Unit unit, const Participants& parts);
  void StartHierarchical(Unit unit, const Participants& parts);

  net::CloudFabric& fabric_;
  std::uint64_t completed_units_ = 0;
};

}  // namespace aiacc::collective
