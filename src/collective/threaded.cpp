#include "collective/threaded.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace aiacc::collective {
namespace {

/// Registry counter for legacy-path (unpooled) payload allocations. Cached
/// so the hot path pays one static-init guard check, not a registry lookup.
telemetry::Counter& LegacyAllocCounter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::Global().GetCounter("hotpath.payload_allocs");
  return counter;
}

/// Receive honouring the Comm deadline (<= 0 blocks forever).
Result<transport::Payload> TimedRecv(transport::Transport& tr,
                                     std::int64_t timeout_ms, int rank,
                                     int src, int tag) {
  if (timeout_ms > 0) {
    return tr.RecvFor(rank, src, tag, std::chrono::milliseconds(timeout_ms));
  }
  return tr.Recv(rank, src, tag);
}

Status CheckSize(const transport::Payload& received, std::size_t expected) {
  if (received.size() != expected) {
    return Internal("collective payload size mismatch: got " +
                    std::to_string(received.size()) + ", want " +
                    std::to_string(expected));
  }
  return Status::Ok();
}

/// Copy `src` into a send buffer. Pooled mode (`pool` set) first recycles
/// `reuse` — typically the payload received on the previous ring step —
/// falling back to the pool when its capacity is too small; legacy mode
/// heap-allocates a fresh copy every call (the pre-pool behaviour, kept for
/// bit-exact A/B comparison and as the bench baseline).
transport::Payload FillSendBuffer(common::BufferPool* pool,
                                  transport::Payload reuse,
                                  std::span<const float> src) {
  if (pool == nullptr) {
    LegacyAllocCounter().Add();
    return transport::Payload(src.begin(), src.end());
  }
  if (reuse.capacity() >= src.size()) {
    reuse.resize(src.size());
  } else {
    if (reuse.capacity() > 0) pool->Release(std::move(reuse));
    reuse = pool->Acquire(src.size());
  }
  std::copy(src.begin(), src.end(), reuse.begin());
  return reuse;
}

/// Hand a finished payload back to the pool (no-op on the legacy path).
void ReleasePayload(common::BufferPool* pool, transport::Payload&& payload) {
  if (pool != nullptr && payload.capacity() > 0) {
    pool->Release(std::move(payload));
  }
}

/// Ring all-reduce over an arbitrary ordered set of global ranks.
/// `op` must not be kAvg (callers finalize averaging themselves so that
/// hierarchical composition divides exactly once).
///
/// Buffer lifecycle in pooled mode: each step's received payload becomes the
/// next step's send buffer. In the reduce-scatter phase it is refilled (its
/// contents were already folded into `data`); in the all-gather phase it is
/// *forwarded unmodified* — the chunk received at step s is exactly the
/// chunk sent at step s+1 — eliminating both the copy and the allocation.
Status RingAllReduceOnRing(transport::Transport& tr,
                           const std::vector<int>& ring, int my_pos,
                           std::span<float> data, ReduceOp op, int tag,
                           std::int64_t timeout_ms,
                           common::BufferPool* pool) {
  AIACC_CHECK(op != ReduceOp::kAvg);
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const std::size_t len = data.size();

  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    const std::size_t e = ChunkBegin(len, n, cc + 1);
    return data.subspan(b, e - b);
  };

  transport::Payload carry;  // recycled send buffer (pooled mode)
  // Reduce-scatter: after step s, each rank has accumulated s+1 inputs into
  // the chunk it just received (folded straight out of the mailbox buffer).
  {
    AIACC_TRACE_SPAN("comm.phase", "reduce-scatter");
    for (int s = 0; s < n - 1; ++s) {
      std::span<float> to_send = chunk(my_pos - s);
      {
        AIACC_TRACE_SPAN_V("comm.step", "send");
        tr.Send(me, next, tag,
                FillSendBuffer(pool, std::move(carry), to_send));
      }
      carry = transport::Payload();
      Result<transport::Payload> received = [&] {
        AIACC_TRACE_SPAN_V("comm.step", "recv-wait");
        return TimedRecv(tr, timeout_ms, me, prev, tag);
      }();
      if (!received.ok()) return received.status();
      {
        AIACC_TRACE_SPAN_V("comm.step", "reduce");
        AIACC_RETURN_IF_ERROR(
            RecvReduce(chunk(my_pos - s - 1), *received, op));
      }
      if (pool != nullptr) carry = std::move(*received);
    }
  }
  // All-gather: circulate the fully-reduced chunks. From step 1 on, the
  // payload received on the previous step *is* this step's chunk, so it is
  // forwarded as-is.
  {
    AIACC_TRACE_SPAN("comm.phase", "all-gather");
    for (int s = 0; s < n - 1; ++s) {
      std::span<float> to_send = chunk(my_pos - s + 1);
      transport::Payload out;
      if (pool != nullptr && s > 0) {
        out = std::move(carry);
      } else {
        out = FillSendBuffer(pool, std::move(carry), to_send);
      }
      carry = transport::Payload();
      {
        AIACC_TRACE_SPAN_V("comm.step", "send");
        tr.Send(me, next, tag, std::move(out));
      }
      Result<transport::Payload> received = [&] {
        AIACC_TRACE_SPAN_V("comm.step", "recv-wait");
        return TimedRecv(tr, timeout_ms, me, prev, tag);
      }();
      if (!received.ok()) return received.status();
      std::span<float> target = chunk(my_pos - s);
      AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
      std::copy(received->begin(), received->end(), target.begin());
      if (pool != nullptr) carry = std::move(*received);
    }
  }
  ReleasePayload(pool, std::move(carry));
  return Status::Ok();
}

Status BroadcastOnRing(transport::Transport& tr, const std::vector<int>& ring,
                       int my_pos, int root_pos, std::span<float> data,
                       int tag, std::int64_t timeout_ms,
                       common::BufferPool* pool) {
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const bool is_root = my_pos == root_pos;
  const bool next_is_root = (my_pos + 1) % n == root_pos;
  if (!is_root) {
    auto received = TimedRecv(tr, timeout_ms, me, prev, tag);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
    std::copy(received->begin(), received->end(), data.begin());
    if (next_is_root) {
      ReleasePayload(pool, std::move(*received));  // end of the pipeline
    } else if (pool != nullptr) {
      // Forward the received payload unmodified (its contents == data).
      tr.Send(me, next, tag, std::move(*received));
    } else {
      tr.Send(me, next, tag, transport::Payload(data.begin(), data.end()));
    }
    return Status::Ok();
  }
  if (!next_is_root) {
    tr.Send(me, next, tag, FillSendBuffer(pool, {}, data));
  }
  return Status::Ok();
}

/// Persistent worker pool shared by every MultiChannelAllReduce invocation
/// in the process. Ring channel tasks *block on each other across ranks*,
/// so the pool grows (never shrinks) to at least the number of channel
/// tasks reserved by all concurrent invocations — the reservation makes the
/// blocked-task set always schedulable (see ThreadPool::EnsureWorkers).
/// Leaked singleton: worker threads may still be draining at static
/// destruction time.
struct ChannelWorkers {
  ThreadPool pool{1};  // NOLOCK(internally synchronized; EnsureWorkers nests under mu)
  common::Mutex mu{"channel-workers", common::lock_rank::kChannelWorkers};
  std::size_t reserved GUARDED_BY(mu) = 0;  // channel tasks of in-flight invocations
};

ChannelWorkers& GlobalChannelWorkers() {
  static ChannelWorkers* workers = new ChannelWorkers();
  return *workers;
}

}  // namespace

std::size_t ChunkBegin(std::size_t len, int n_chunks, int chunk) {
  return len * static_cast<std::size_t>(chunk) /
         static_cast<std::size_t>(n_chunks);
}

Status RingAllReduce(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  AIACC_TRACE_SPAN("comm", "ring-all-reduce");
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, ring, comm.rank,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms, comm.pool));
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status HierarchicalAllReduce(const Comm& comm, int gpus_per_host,
                             std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  AIACC_TRACE_SPAN("comm", "hierarchical-all-reduce");
  AIACC_CHECK(gpus_per_host >= 1);
  AIACC_CHECK(comm.world_size % gpus_per_host == 0);
  const int host = comm.rank / gpus_per_host;
  const int local = comm.rank % gpus_per_host;
  const int num_hosts = comm.world_size / gpus_per_host;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;

  // Phase 1: ring all-reduce inside the host group (over NVLink in the
  // paper) — every member ends with the group total.
  std::vector<int> group(static_cast<std::size_t>(gpus_per_host));
  for (int g = 0; g < gpus_per_host; ++g) {
    group[static_cast<std::size_t>(g)] = host * gpus_per_host + g;
  }
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, group, local,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms, comm.pool));

  // Phase 2: group leaders ring all-reduce across hosts.
  if (num_hosts > 1) {
    if (local == 0) {
      std::vector<int> leaders(static_cast<std::size_t>(num_hosts));
      for (int h = 0; h < num_hosts; ++h) {
        leaders[static_cast<std::size_t>(h)] = h * gpus_per_host;
      }
      AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, leaders,
                                                host, data, inner,
                                                comm.tag_base + 1,
                                                comm.timeout_ms, comm.pool));
    }
    // Phase 3: leaders broadcast the global result inside their group.
    AIACC_RETURN_IF_ERROR(BroadcastOnRing(*comm.transport, group, local,
                                          /*root_pos=*/0, data,
                                          comm.tag_base + 2,
                                          comm.timeout_ms, comm.pool));
  }
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status ReduceScatter(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  common::BufferPool* pool = comm.pool;
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  transport::Payload carry;
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(me - s);
    comm.transport->Send(me, next, comm.tag_base,
                         FillSendBuffer(pool, std::move(carry), to_send));
    carry = transport::Payload();
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(RecvReduce(chunk(me - s - 1), *received, inner));
    if (pool != nullptr) carry = std::move(*received);
  }
  // Rank r now owns reduced chunk (r + 1) mod n; rotate ownership convention
  // so rank r owns chunk r: one extra pass of the owned chunk to `next`.
  std::span<float> owned = chunk(me + 1);
  comm.transport->Send(me, next, comm.tag_base + 1,
                       FillSendBuffer(pool, std::move(carry), owned));
  auto received = TimedRecv(*comm.transport, comm.timeout_ms, me, prev,
                            comm.tag_base + 1);
  if (!received.ok()) return received.status();
  std::span<float> mine = chunk(me);
  AIACC_RETURN_IF_ERROR(CheckSize(*received, mine.size()));
  std::copy(received->begin(), received->end(), mine.begin());
  ReleasePayload(pool, std::move(*received));
  FinalizeAvg(mine, n, op);
  return Status::Ok();
}

Status AllGather(const Comm& comm, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) return Status::Ok();
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  common::BufferPool* pool = comm.pool;
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  transport::Payload carry;
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(me - s);
    transport::Payload out;
    if (pool != nullptr && s > 0) {
      out = std::move(carry);  // received at step s-1 == chunk(me - s)
    } else {
      out = FillSendBuffer(pool, std::move(carry), to_send);
    }
    carry = transport::Payload();
    comm.transport->Send(me, next, comm.tag_base, std::move(out));
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
    if (!received.ok()) return received.status();
    std::span<float> target = chunk(me - s - 1);
    AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
    std::copy(received->begin(), received->end(), target.begin());
    if (pool != nullptr) carry = std::move(*received);
  }
  ReleasePayload(pool, std::move(carry));
  return Status::Ok();
}

Status Broadcast(const Comm& comm, int root, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  return BroadcastOnRing(*comm.transport, ring, comm.rank, root, data,
                         comm.tag_base, comm.timeout_ms, comm.pool);
}

Status Reduce(const Comm& comm, int root, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  // Chain along the ring ending at root: rank root+1 starts, each rank
  // accumulates its predecessor's partial into a scratch copy and forwards.
  const int me = comm.rank;
  const int position = (me - root - 1 + n) % n;  // 0 = chain head
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  if (position == 0) {
    comm.transport->Send(me, next, comm.tag_base,
                         FillSendBuffer(comm.pool, {}, data));
    return Status::Ok();
  }
  auto received =
      TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
  if (!received.ok()) return received.status();
  if (me == root) {
    AIACC_RETURN_IF_ERROR(RecvReduce(data, *received, inner));
    ReleasePayload(comm.pool, std::move(*received));
    FinalizeAvg(data, n, op);
    return Status::Ok();
  }
  AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
  // Accumulate into the received scratch so this rank's own buffer stays
  // untouched, then forward the same buffer (zero extra allocations).
  transport::Payload partial = std::move(*received);
  Accumulate(std::span<float>(partial), data, inner);
  comm.transport->Send(me, next, comm.tag_base, std::move(partial));
  return Status::Ok();
}

Status Gather(const Comm& comm, int root, std::span<const float> contribution,
              std::span<float> gathered) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  common::BufferPool* pool = comm.pool;
  if (comm.rank != root) {
    comm.transport->Send(comm.rank, root, comm.tag_base,
                         FillSendBuffer(pool, {}, contribution));
    return Status::Ok();
  }
  AIACC_CHECK(gathered.size() ==
              contribution.size() * static_cast<std::size_t>(n));
  auto block_of = [&](int r) {
    return gathered.subspan(
        static_cast<std::size_t>(r) * contribution.size(),
        contribution.size());
  };
  std::copy(contribution.begin(), contribution.end(), block_of(root).begin());

  auto consume = [&](int r, transport::Payload&& payload) -> Status {
    AIACC_RETURN_IF_ERROR(CheckSize(payload, contribution.size()));
    std::copy(payload.begin(), payload.end(), block_of(r).begin());
    ReleasePayload(pool, std::move(payload));
    return Status::Ok();
  };

  std::vector<int> pending;
  pending.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n; ++r) {
    if (r != root) pending.push_back(r);
  }
  // Drain peers in completion order: sweep every pending peer with TryRecv;
  // when a full sweep makes no progress, park briefly on one pending peer
  // (rotating) so the loop sleeps instead of spinning — an arrival from the
  // parked peer or a Shutdown wakes it immediately, an arrival from any
  // other peer is picked up by the next sweep within the park quantum.
  // `timeout_ms` bounds the silence between two successful receives, the
  // same per-message deadline the strict rank-order scan enforced.
  using Clock = std::chrono::steady_clock;
  const bool bounded = comm.timeout_ms > 0;
  constexpr std::chrono::milliseconds kParkQuantum{5};
  auto wait_start = Clock::now();
  std::size_t park = 0;
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (auto payload = comm.transport->TryRecv(root, *it, comm.tag_base)) {
        AIACC_RETURN_IF_ERROR(consume(*it, std::move(*payload)));
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (pending.empty()) break;
    if (progressed) {
      wait_start = Clock::now();
      continue;
    }
    const int r = pending[park++ % pending.size()];
    auto quantum = kParkQuantum;
    if (bounded) {
      const auto remaining =
          std::chrono::milliseconds(comm.timeout_ms) -
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - wait_start);
      if (remaining <= std::chrono::milliseconds::zero()) {
        return DeadlineExceeded("gather: no contribution within " +
                                std::to_string(comm.timeout_ms) +
                                "ms; still missing " +
                                std::to_string(pending.size()) + " rank(s)");
      }
      quantum = std::min(quantum, remaining);
    }
    auto received = comm.transport->RecvFor(root, r, comm.tag_base, quantum);
    if (received.ok()) {
      AIACC_RETURN_IF_ERROR(consume(r, std::move(*received)));
      pending.erase(std::find(pending.begin(), pending.end(), r));
      wait_start = Clock::now();
    } else if (received.status().code() != StatusCode::kDeadlineExceeded) {
      return received.status();  // e.g. Unavailable after Shutdown
    }
    // Park quantum expired: sweep again.
  }
  return Status::Ok();
}

Status Scatter(const Comm& comm, int root, std::span<const float> scattered,
               std::span<float> chunk) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (comm.rank == root) {
    AIACC_CHECK(scattered.size() == chunk.size() * static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto block = scattered.subspan(
          static_cast<std::size_t>(r) * chunk.size(), chunk.size());
      if (r == root) {
        std::copy(block.begin(), block.end(), chunk.begin());
      } else {
        comm.transport->Send(root, r, comm.tag_base,
                             FillSendBuffer(comm.pool, {}, block));
      }
    }
  } else {
    auto received = TimedRecv(*comm.transport, comm.timeout_ms, comm.rank,
                              root, comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, chunk.size()));
    std::copy(received->begin(), received->end(), chunk.begin());
    ReleasePayload(comm.pool, std::move(*received));
  }
  return Status::Ok();
}

Status AllToAll(const Comm& comm, std::span<const float> send,
                std::span<float> recv) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  AIACC_CHECK(send.size() == recv.size());
  AIACC_CHECK(send.size() % static_cast<std::size_t>(n) == 0);
  const std::size_t block = send.size() / static_cast<std::size_t>(n);
  // Post all sends first (non-blocking), then receive from every peer.
  for (int d = 0; d < n; ++d) {
    auto out = send.subspan(static_cast<std::size_t>(d) * block, block);
    if (d == comm.rank) {
      std::copy(out.begin(), out.end(),
                recv.begin() + static_cast<std::ptrdiff_t>(d) *
                                   static_cast<std::ptrdiff_t>(block));
    } else {
      comm.transport->Send(comm.rank, d, comm.tag_base,
                           FillSendBuffer(comm.pool, {}, out));
    }
  }
  for (int s = 0; s < n; ++s) {
    if (s == comm.rank) continue;
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, comm.rank, s,
                  comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, block));
    std::copy(received->begin(), received->end(),
              recv.begin() + static_cast<std::ptrdiff_t>(s) *
                                 static_cast<std::ptrdiff_t>(block));
    ReleasePayload(comm.pool, std::move(*received));
  }
  return Status::Ok();
}

int MultiChannelWorkerCount() {
  return static_cast<int>(GlobalChannelWorkers().pool.size());
}

Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels) {
  AIACC_CHECK(num_channels >= 1);
  if (num_channels == 1 || data.size() < static_cast<std::size_t>(
                               num_channels * comm.world_size)) {
    return RingAllReduce(comm, data, op);
  }
  // Channel 0 runs on the calling thread, so k channels consume k-1 pool
  // workers. Reserving before submitting keeps pool size >= the number of
  // channel tasks in flight across *all* concurrent invocations — ring
  // tasks block on their peers, so every submitted task must be running for
  // any of them to finish.
  ChannelWorkers& workers = GlobalChannelWorkers();
  const std::size_t extra = static_cast<std::size_t>(num_channels - 1);
  {
    common::MutexLock lock(workers.mu);
    workers.reserved += extra;
    workers.pool.EnsureWorkers(workers.reserved);
  }

  // Stack-local completion latch: acquired last, nests under nothing.
  struct Completion {
    common::Mutex mu{"mc-completion"};
    common::CondVar cv;
    int remaining GUARDED_BY(mu) = 0;
  } done;
  {
    common::MutexLock lock(done.mu);
    done.remaining = static_cast<int>(extra);
  }
  std::vector<Status> channel_status(static_cast<std::size_t>(num_channels));
  for (int c = 1; c < num_channels; ++c) {
    const std::size_t b = ChunkBegin(data.size(), num_channels, c);
    const std::size_t e = ChunkBegin(data.size(), num_channels, c + 1);
    Comm sub = comm;
    // Each channel gets a disjoint tag namespace (collective/tags.h).
    sub.tag_base = ChannelTagBase(comm.tag_base, c);
    Status* slot = &channel_status[static_cast<std::size_t>(c)];
    workers.pool.Submit([sub, slice = data.subspan(b, e - b), op, slot,
                         &done, c] {
      {
        AIACC_TRACE_SPAN_IDX("comm.channel", "channel", c);
        *slot = RingAllReduce(sub, slice, op);
      }
      common::MutexLock lock(done.mu);
      if (--done.remaining == 0) done.cv.NotifyAll();
    });
  }
  {
    const std::size_t e = ChunkBegin(data.size(), num_channels, 1);
    Comm sub = comm;
    sub.tag_base = ChannelTagBase(comm.tag_base, 0);
    AIACC_TRACE_SPAN_IDX("comm.channel", "channel", 0);
    channel_status[0] = RingAllReduce(sub, data.subspan(0, e), op);
  }
  {
    common::MutexLock lock(done.mu);
    while (done.remaining != 0) done.cv.Wait(lock);
  }
  {
    common::MutexLock lock(workers.mu);
    workers.reserved -= extra;
  }
  for (const Status& st : channel_status) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace aiacc::collective
