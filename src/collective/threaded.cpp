#include "collective/threaded.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "collective/channel_health.h"

#include "common/logging.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace aiacc::collective {
namespace {

using compress::CodecKind;

/// Registry counter for legacy-path (unpooled) payload allocations. Cached
/// so the hot path pays one static-init guard check, not a registry lookup.
telemetry::Counter& LegacyAllocCounter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::Global().GetCounter("hotpath.payload_allocs");
  return counter;
}

/// Receive honouring the Comm deadline (<= 0 blocks forever).
Result<transport::Payload> TimedRecv(transport::Transport& tr,
                                     std::int64_t timeout_ms, int rank,
                                     int src, int tag) {
  if (timeout_ms > 0) {
    return tr.RecvFor(rank, src, tag, std::chrono::milliseconds(timeout_ms));
  }
  return tr.Recv(rank, src, tag);
}

Status CheckSize(const transport::Payload& received, std::size_t expected) {
  if (received.size() != expected) {
    return Internal("collective payload size mismatch: got " +
                    std::to_string(received.size()) + ", want " +
                    std::to_string(expected));
  }
  return Status::Ok();
}

/// Copy `src` into a send buffer. Pooled mode (`pool` set) first recycles
/// `reuse` — typically the payload received on the previous ring step —
/// falling back to the pool when its capacity is too small; legacy mode
/// heap-allocates a fresh copy every call (the pre-pool behaviour, kept for
/// bit-exact A/B comparison and as the bench baseline).
transport::Payload FillSendBuffer(common::BufferPool* pool,
                                  transport::Payload reuse,
                                  std::span<const float> src) {
  if (pool == nullptr) {
    LegacyAllocCounter().Add();
    return transport::Payload(src.begin(), src.end());
  }
  if (reuse.capacity() >= src.size()) {
    reuse.resize(src.size());
  } else {
    if (reuse.capacity() > 0) pool->Release(std::move(reuse));
    reuse = pool->Acquire(src.size());
  }
  std::copy(src.begin(), src.end(), reuse.begin());
  return reuse;
}

/// Hand a finished payload back to the pool (no-op on the legacy path).
void ReleasePayload(common::BufferPool* pool, transport::Payload&& payload) {
  if (pool != nullptr && payload.capacity() > 0) {
    pool->Release(std::move(payload));
  }
}

/// Cast-encode `src` into a send buffer of CastWireFloats(src.size()) wire
/// words — the codec twin of FillSendBuffer, with the same reuse-then-pool
/// buffer discipline (legacy mode heap-allocates and counts it).
transport::Payload FillSendEncoded(common::BufferPool* pool,
                                   transport::Payload reuse,
                                   std::span<const float> src,
                                   CodecKind wire) {
  const std::size_t wn = compress::CastWireFloats(src.size());
  if (pool == nullptr) {
    LegacyAllocCounter().Add();
    transport::Payload out(wn);
    compress::CastEncode(wire, src, out);
    return out;
  }
  if (reuse.capacity() >= wn) {
    reuse.resize(wn);
  } else {
    if (reuse.capacity() > 0) pool->Release(std::move(reuse));
    reuse = pool->Acquire(wn);
  }
  compress::CastEncode(wire, src, reuse);
  return reuse;
}

/// Gauge of slice messages currently in flight across every pipelined ring
/// in the process (sender +1 on Send, receiver -1 on delivery). Cached like
/// LegacyAllocCounter; only touched when the effective depth exceeds 1 so
/// the depth-1 hot path pays no shared-cacheline traffic for it.
telemetry::Gauge& InflightSlicesGauge() {
  static telemetry::Gauge& gauge =
      telemetry::MetricsRegistry::Global().GetGauge("hotpath.inflight_slices");
  return gauge;
}

/// The recycled send buffers of one pipelined ring: slot k carries slice
/// k's payload between steps. Fixed-size so a collective call never heap-
/// allocates for its bookkeeping (default-constructed Payloads own nothing).
using SliceWindow = std::array<transport::Payload, kMaxPipelineDepth>;

void ReleaseWindow(common::BufferPool* pool, SliceWindow& window) {
  for (transport::Payload& p : window) ReleasePayload(pool, std::move(p));
}

/// Effective pipeline depth for a ring of `n` ranks over `len` elements.
/// Every chunk holds at least len/n (floor) elements and slices split a
/// chunk the same way chunks split the buffer, so capping the depth at
/// len/n guarantees every slice of every chunk is non-empty. Computed from
/// globally-agreed values only (all ranks derive the identical schedule);
/// depth 1 — always the result for len < 2n — is exactly the unpipelined
/// message order.
int EffectivePipelineDepth(std::size_t len, int n, int requested) {
  const std::size_t per_chunk = len / static_cast<std::size_t>(n);
  const int cap = static_cast<int>(
      std::min<std::size_t>(per_chunk, kMaxPipelineDepth));
  return std::clamp(requested, 1, std::max(1, cap));
}

/// Slice k of d within a ring chunk (second-level ChunkBegin split).
std::span<float> SliceOf(std::span<float> chunk, int d, int k) {
  const std::size_t b = ChunkBegin(chunk.size(), d, k);
  return chunk.subspan(b, ChunkBegin(chunk.size(), d, k + 1) - b);
}

/// Reduce-scatter phase of a ring, sliced `d` deep: step s sends
/// chunk(start - s) and folds the received slices into chunk(start - s - 1).
/// The prologue puts all d slices of chunk(start) in flight on the same tag
/// channel; from then on the reduce of slice k overlaps the recv-wait of
/// slice k+1, and each just-reduced slice goes straight back on the wire as
/// the next step's send. Every rank emits sends in the identical global
/// order (step-major, slice-minor), so per-(src,tag) FIFO matching is
/// preserved at any depth, and slicing never changes which step an element
/// reduces in — results are bit-identical to d = 1.
///
/// Buffer lifecycle in pooled mode: the payload received for slice k is
/// refilled with the next step's slice k (its contents were already folded
/// into `data`) and resent; the last step's payloads are parked in
/// `carry[k]` for the all-gather prologue to reuse. Callers must ensure
/// n > 1 and that d came from EffectivePipelineDepth (no empty slices).
///
/// With a cast codec (`wire` != kNone) every hop ships packed 16-bit lanes:
/// the received slice decodes into `scratch` (caller-provided, at least one
/// chunk long), folds into `data`, and the just-reduced slice re-encodes
/// into the received payload before going back on the wire — so the encode
/// of slice k overlaps the recv-wait of slice k+1 exactly like the
/// uncompressed pipeline, at half the bytes per hop.
template <typename ChunkFn>
Status PipelinedReduceScatterPhase(transport::Transport& tr, int me, int next,
                                   int prev, int n, ChunkFn&& chunk, int start,
                                   ReduceOp op, int tag,
                                   std::int64_t timeout_ms,
                                   common::BufferPool* pool, int d,
                                   SliceWindow& carry, CodecKind wire,
                                   std::span<float> scratch,
                                   void (*yield)(void*) = nullptr,
                                   void* yield_ctx = nullptr) {
  AIACC_TRACE_SPAN("comm.phase", "reduce-scatter");
  const bool pipelined = d > 1;
  const bool encoded = wire != CodecKind::kNone;
  std::span<float> first = chunk(start);
  for (int k = 0; k < d; ++k) {
    AIACC_TRACE_SPAN_V("comm.step", "send");
    std::span<float> slice = SliceOf(first, d, k);
    auto reuse = std::move(carry[static_cast<std::size_t>(k)]);
    tr.Send(me, next, tag,
            encoded ? FillSendEncoded(pool, std::move(reuse), slice, wire)
                    : FillSendBuffer(pool, std::move(reuse), slice));
    carry[static_cast<std::size_t>(k)] = transport::Payload();
    if (pipelined) InflightSlicesGauge().Add(1);
  }
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> target = chunk(start - s - 1);
    for (int k = 0; k < d; ++k) {
      // Cooperative preemption point (Comm::slice_yield): give an urgent
      // unit on another stream the transport before committing to this
      // slice's recv-wait. Timing-only — never changes the schedule.
      if (yield != nullptr) yield(yield_ctx);
      Result<transport::Payload> received = [&] {
        AIACC_TRACE_SPAN_V("comm.step", "recv-wait");
        return TimedRecv(tr, timeout_ms, me, prev, tag);
      }();
      if (!received.ok()) return received.status();
      if (pipelined) InflightSlicesGauge().Add(-1);
      std::span<float> slice = SliceOf(target, d, k);
      if (encoded) {
        AIACC_TRACE_SPAN_V("comm.step", "reduce");
        AIACC_RETURN_IF_ERROR(
            CheckSize(*received, compress::CastWireFloats(slice.size())));
        std::span<float> decoded = scratch.first(slice.size());
        compress::CastDecode(wire, *received, decoded, slice.size());
        Accumulate(slice, decoded, op);
      } else {
        AIACC_TRACE_SPAN_V("comm.step", "reduce");
        AIACC_RETURN_IF_ERROR(RecvReduce(slice, *received, op));
      }
      if (s + 1 < n - 1) {
        AIACC_TRACE_SPAN_V("comm.step", "send");
        tr.Send(me, next, tag,
                encoded
                    ? FillSendEncoded(pool, std::move(*received), slice, wire)
                    : FillSendBuffer(pool, std::move(*received), slice));
        if (pipelined) InflightSlicesGauge().Add(1);
      } else if (pool != nullptr) {
        carry[static_cast<std::size_t>(k)] = std::move(*received);
      }
    }
  }
  return Status::Ok();
}

/// All-gather phase of a ring, sliced `d` deep: step s sends chunk(start - s)
/// and fills chunk(start - s - 1) from the wire, forwarding each slice the
/// moment it lands instead of waiting for the whole chunk. In pooled mode
/// the prologue refills `carry` from `data` (the reduce-scatter results live
/// in `data`, not in the parked buffers) and every later step forwards the
/// received payload unmodified — its contents are exactly the slice the next
/// step sends. Same send-order/bit-exactness guarantees as the reduce-
/// scatter phase; callers must ensure n > 1 and d from
/// EffectivePipelineDepth.
/// With a cast codec the prologue encodes each owned slice and immediately
/// decodes the encoding *back into the slice* (owner self-roundtrip): the
/// chunk owner would otherwise keep its unquantized values while every
/// other rank holds the decoded wire form, and replicas would diverge
/// bitwise. Received slices decode in place and the payload is forwarded
/// unmodified — its contents are already the encoded slice the next hop
/// expects.
template <typename ChunkFn>
Status PipelinedAllGatherPhase(transport::Transport& tr, int me, int next,
                               int prev, int n, ChunkFn&& chunk, int start,
                               int tag, std::int64_t timeout_ms,
                               common::BufferPool* pool, int d,
                               SliceWindow& carry, CodecKind wire,
                               void (*yield)(void*) = nullptr,
                               void* yield_ctx = nullptr) {
  AIACC_TRACE_SPAN("comm.phase", "all-gather");
  const bool pipelined = d > 1;
  const bool encoded = wire != CodecKind::kNone;
  std::span<float> first = chunk(start);
  for (int k = 0; k < d; ++k) {
    AIACC_TRACE_SPAN_V("comm.step", "send");
    std::span<float> slice = SliceOf(first, d, k);
    auto reuse = std::move(carry[static_cast<std::size_t>(k)]);
    if (encoded) {
      transport::Payload out =
          FillSendEncoded(pool, std::move(reuse), slice, wire);
      compress::CastDecode(wire, out, slice, slice.size());
      tr.Send(me, next, tag, std::move(out));
    } else {
      tr.Send(me, next, tag, FillSendBuffer(pool, std::move(reuse), slice));
    }
    carry[static_cast<std::size_t>(k)] = transport::Payload();
    if (pipelined) InflightSlicesGauge().Add(1);
  }
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> target = chunk(start - s - 1);
    for (int k = 0; k < d; ++k) {
      if (yield != nullptr) yield(yield_ctx);
      Result<transport::Payload> received = [&] {
        AIACC_TRACE_SPAN_V("comm.step", "recv-wait");
        return TimedRecv(tr, timeout_ms, me, prev, tag);
      }();
      if (!received.ok()) return received.status();
      if (pipelined) InflightSlicesGauge().Add(-1);
      std::span<float> slice = SliceOf(target, d, k);
      if (encoded) {
        AIACC_RETURN_IF_ERROR(
            CheckSize(*received, compress::CastWireFloats(slice.size())));
        compress::CastDecode(wire, *received, slice, slice.size());
      } else {
        AIACC_RETURN_IF_ERROR(CheckSize(*received, slice.size()));
        std::copy(received->begin(), received->end(), slice.begin());
      }
      if (s + 1 < n - 1) {
        AIACC_TRACE_SPAN_V("comm.step", "send");
        if (pool != nullptr) {
          tr.Send(me, next, tag, std::move(*received));
        } else {
          // Legacy mode forwards a verbatim copy of the wire words — the
          // payload already holds exactly what the next hop expects.
          tr.Send(me, next, tag,
                  FillSendBuffer(pool, {},
                                 std::span<const float>(*received)));
        }
        if (pipelined) InflightSlicesGauge().Add(1);
      } else if (pool != nullptr) {
        carry[static_cast<std::size_t>(k)] = std::move(*received);
      }
    }
  }
  return Status::Ok();
}

/// Ring all-reduce over an arbitrary ordered set of global ranks.
/// `op` must not be kAvg (callers finalize averaging themselves so that
/// hierarchical composition divides exactly once). `pipeline_depth` slices
/// each per-step chunk (see Comm::pipeline_depth); the reduce-scatter
/// phase's parked buffers seed the all-gather prologue, so at any depth the
/// steady state performs zero payload allocations in pooled mode.
Status RingAllReduceOnRing(transport::Transport& tr,
                           const std::vector<int>& ring, int my_pos,
                           std::span<float> data, ReduceOp op, int tag,
                           std::int64_t timeout_ms, common::BufferPool* pool,
                           int pipeline_depth, CodecKind wire,
                           void (*yield)(void*) = nullptr,
                           void* yield_ctx = nullptr) {
  AIACC_CHECK(op != ReduceOp::kAvg);
  AIACC_CHECK(wire == CodecKind::kNone || compress::IsCast(wire));
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const std::size_t len = data.size();

  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    const std::size_t e = ChunkBegin(len, n, cc + 1);
    return data.subspan(b, e - b);
  };

  const int d = EffectivePipelineDepth(len, n, pipeline_depth);
  // Decode scratch for the cast codec: one chunk is the largest unit any
  // slice decode needs, acquired once per collective (pooled mode stays
  // allocation-free in steady state).
  common::BufferPool::Buffer scratch_buf;
  std::vector<float> legacy_scratch;
  std::span<float> scratch{};
  if (wire != CodecKind::kNone) {
    const std::size_t max_chunk = (len + static_cast<std::size_t>(n) - 1) /
                                  static_cast<std::size_t>(n);
    if (pool != nullptr) {
      scratch_buf = pool->Acquire(max_chunk);
      scratch = scratch_buf;
    } else {
      legacy_scratch.resize(max_chunk);
      scratch = legacy_scratch;
    }
  }
  SliceWindow carry;
  Status status = PipelinedReduceScatterPhase(tr, me, next, prev, n, chunk,
                                              my_pos, op, tag, timeout_ms,
                                              pool, d, carry, wire, scratch,
                                              yield, yield_ctx);
  // Rank my_pos now owns reduced chunk(my_pos + 1): the all-gather starts
  // there and circulates the fully-reduced chunks around the ring.
  if (status.ok()) {
    status = PipelinedAllGatherPhase(tr, me, next, prev, n, chunk, my_pos + 1,
                                     tag, timeout_ms, pool, d, carry, wire,
                                     yield, yield_ctx);
  }
  ReleaseWindow(pool, carry);
  if (pool != nullptr && scratch_buf.capacity() > 0) {
    pool->Release(std::move(scratch_buf));
  }
  return status;
}

Status BroadcastOnRing(transport::Transport& tr, const std::vector<int>& ring,
                       int my_pos, int root_pos, std::span<float> data,
                       int tag, std::int64_t timeout_ms,
                       common::BufferPool* pool,
                       CodecKind wire = CodecKind::kNone) {
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const bool encoded = wire != CodecKind::kNone;
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const bool is_root = my_pos == root_pos;
  const bool next_is_root = (my_pos + 1) % n == root_pos;
  if (!is_root) {
    auto received = TimedRecv(tr, timeout_ms, me, prev, tag);
    if (!received.ok()) return received.status();
    if (encoded) {
      AIACC_RETURN_IF_ERROR(
          CheckSize(*received, compress::CastWireFloats(data.size())));
      compress::CastDecode(wire, *received, data, data.size());
    } else {
      AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
      std::copy(received->begin(), received->end(), data.begin());
    }
    if (next_is_root) {
      ReleasePayload(pool, std::move(*received));  // end of the pipeline
    } else if (pool != nullptr) {
      // Forward the received payload unmodified (its contents are exactly
      // what the next hop expects, encoded or raw).
      tr.Send(me, next, tag, std::move(*received));
    } else {
      tr.Send(me, next, tag,
              FillSendBuffer(pool, {}, std::span<const float>(*received)));
    }
    return Status::Ok();
  }
  if (encoded) {
    // Root self-roundtrip: the broadcast result on every rank must be the
    // decoded wire form, including on the root itself.
    transport::Payload out = FillSendEncoded(pool, {}, data, wire);
    compress::CastDecode(wire, out, data, data.size());
    if (!next_is_root) {
      tr.Send(me, next, tag, std::move(out));
    } else {
      ReleasePayload(pool, std::move(out));
    }
  } else if (!next_is_root) {
    tr.Send(me, next, tag, FillSendBuffer(pool, {}, data));
  }
  return Status::Ok();
}

/// Persistent worker pool shared by every MultiChannelAllReduce invocation
/// in the process. Ring channel tasks *block on each other across ranks*,
/// so the pool grows (never shrinks) to at least the number of channel
/// tasks reserved by all concurrent invocations — the reservation makes the
/// blocked-task set always schedulable (see ThreadPool::EnsureWorkers).
/// Leaked singleton: worker threads may still be draining at static
/// destruction time.
struct ChannelWorkers {
  ThreadPool pool{1};  // NOLOCK(internally synchronized; EnsureWorkers nests under mu)
  common::Mutex mu{"channel-workers", common::lock_rank::kChannelWorkers};
  std::size_t reserved GUARDED_BY(mu) = 0;  // channel tasks of in-flight invocations
};

ChannelWorkers& GlobalChannelWorkers() {
  static ChannelWorkers* workers = new ChannelWorkers();
  return *workers;
}

}  // namespace

std::size_t ChunkBegin(std::size_t len, int n_chunks, int chunk) {
  return len * static_cast<std::size_t>(chunk) /
         static_cast<std::size_t>(n_chunks);
}

Status RingAllReduce(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  // The bit-packed sync rounds are exact agreements — a lossy codec on that
  // traffic would corrupt the protocol, so the combination is forbidden.
  AIACC_CHECK(comm.codec.kind == CodecKind::kNone || op != ReduceOp::kBitAnd);
  if (compress::IsSparse(comm.codec.kind)) {
    return CompressedAllReduce(comm, data, op, {});
  }
  AIACC_TRACE_SPAN("comm", "ring-all-reduce");
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, ring, comm.rank,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms, comm.pool,
                                            comm.pipeline_depth,
                                            comm.codec.kind, comm.slice_yield,
                                            comm.slice_yield_ctx));
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status CompressedAllReduce(const Comm& comm, std::span<float> data,
                           ReduceOp op, std::span<float> residual) {
  AIACC_CHECK(comm.transport != nullptr);
  AIACC_CHECK(compress::IsSparse(comm.codec.kind));
  AIACC_CHECK(op == ReduceOp::kSum || op == ReduceOp::kAvg);
  AIACC_CHECK(residual.empty() || residual.size() == data.size());
  AIACC_TRACE_SPAN("comm", "compressed-all-reduce");
  const int n = comm.world_size;
  const std::size_t len = data.size();
  common::BufferPool* pool = comm.pool;
  common::BufferPool& scratch_pool =
      pool != nullptr ? *pool : common::BufferPool::Global();
  const bool has_ef = !residual.empty();

  auto acquire = [&](std::size_t sz) -> transport::Payload {
    if (pool != nullptr) return pool->Acquire(sz);
    LegacyAllocCounter().Add();
    return transport::Payload(sz);
  };

  // 1. Error-feedback compensation: fold the residual the codec dropped on
  //    previous steps into this step's gradient before encoding.
  if (has_ef) {
    for (std::size_t i = 0; i < len; ++i) data[i] += residual[i];
  }

  // 2. Encode the compensated gradient once (per collective, not per hop).
  transport::Payload own = acquire(compress::MaxWireFloats(comm.codec, len));
  own.resize(compress::SparseEncode(comm.codec, data, own, scratch_pool));
  compress::RecordWireFootprint(len, own.size());

  // 3. residual = compensated - decode(own record), computed locally so EF
  //    costs no wire traffic. Updated before the ring so a deterministic
  //    abort mid-collective leaves residuals consistent with what was sent
  //    (callers that retry re-gather residuals from their persistent copy).
  if (has_ef) {
    transport::Payload decoded = acquire(len);
    std::fill(decoded.begin(), decoded.end(), 0.0f);
    const Status self = compress::SparseDecodeAccumulate(comm.codec, own,
                                                         decoded);
    AIACC_CHECK(self.ok());
    for (std::size_t i = 0; i < len; ++i) residual[i] = data[i] - decoded[i];
    ReleasePayload(pool, std::move(decoded));
  }

  // 4. Ring all-gather of the n variable-length compressed records: step s
  //    forwards the record received on step s-1, so every rank ends holding
  //    all n records. Each rank sends n-1 compressed payloads instead of
  //    2(n-1) raw chunks — the whole wire saving lives here.
  std::vector<transport::Payload> records(static_cast<std::size_t>(n));
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  auto release_all = [&](transport::Payload&& own_record) {
    ReleasePayload(pool, std::move(own_record));
    for (transport::Payload& r : records) ReleasePayload(pool, std::move(r));
  };
  if (n > 1) {
    transport::Payload cursor =
        FillSendBuffer(pool, {}, std::span<const float>(own));
    for (int s = 0; s < n - 1; ++s) {
      AIACC_TRACE_SPAN_V("comm.step", "record-hop");
      comm.transport->Send(me, next, comm.tag_base, std::move(cursor));
      auto received = TimedRecv(*comm.transport, comm.timeout_ms, me, prev,
                                comm.tag_base);
      if (!received.ok()) {
        release_all(std::move(own));
        return received.status();
      }
      const int src = (me - s - 1 + n) % n;
      if (s + 1 < n - 1) {
        cursor = FillSendBuffer(pool, {}, std::span<const float>(*received));
      }
      records[static_cast<std::size_t>(src)] = std::move(*received);
    }
  }
  records[static_cast<std::size_t>(me)] = std::move(own);

  // 5. Decode-accumulate in rank order 0..n-1 — the identical float-add
  //    order on every rank, so replicas are bit-identical even though each
  //    rank received the records in a different ring order.
  std::fill(data.begin(), data.end(), 0.0f);
  Status status = Status::Ok();
  for (int r = 0; r < n && status.ok(); ++r) {
    status = compress::SparseDecodeAccumulate(
        comm.codec, records[static_cast<std::size_t>(r)], data);
  }
  for (transport::Payload& r : records) ReleasePayload(pool, std::move(r));
  if (!status.ok()) return status;
  FinalizeAvg(data, n, op);
  return Status::Ok();
}

Status HierarchicalAllReduce(const Comm& comm, int gpus_per_host,
                             std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  AIACC_CHECK(comm.codec.kind == CodecKind::kNone || op != ReduceOp::kBitAnd);
  if (compress::IsSparse(comm.codec.kind)) {
    // Sparse records do not compose with the intra/inter-host ring split
    // (partial sums of decoded records would re-encode lossily per tier);
    // one flat compressed all-reduce ships fewer bytes anyway.
    return CompressedAllReduce(comm, data, op, {});
  }
  AIACC_TRACE_SPAN("comm", "hierarchical-all-reduce");
  AIACC_CHECK(gpus_per_host >= 1);
  AIACC_CHECK(comm.world_size % gpus_per_host == 0);
  const int host = comm.rank / gpus_per_host;
  const int local = comm.rank % gpus_per_host;
  const int num_hosts = comm.world_size / gpus_per_host;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;

  // Phase 1: ring all-reduce inside the host group (over NVLink in the
  // paper) — every member ends with the group total.
  std::vector<int> group(static_cast<std::size_t>(gpus_per_host));
  for (int g = 0; g < gpus_per_host; ++g) {
    group[static_cast<std::size_t>(g)] = host * gpus_per_host + g;
  }
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, group, local,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms, comm.pool,
                                            comm.pipeline_depth,
                                            comm.codec.kind, comm.slice_yield,
                                            comm.slice_yield_ctx));

  // Phase 2: group leaders ring all-reduce across hosts.
  if (num_hosts > 1) {
    if (local == 0) {
      std::vector<int> leaders(static_cast<std::size_t>(num_hosts));
      for (int h = 0; h < num_hosts; ++h) {
        leaders[static_cast<std::size_t>(h)] = h * gpus_per_host;
      }
      AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, leaders,
                                                host, data, inner,
                                                comm.tag_base + 1,
                                                comm.timeout_ms, comm.pool,
                                                comm.pipeline_depth,
                                                comm.codec.kind,
                                                comm.slice_yield,
                                                comm.slice_yield_ctx));
    }
    // Phase 3: leaders broadcast the global result inside their group.
    AIACC_RETURN_IF_ERROR(BroadcastOnRing(*comm.transport, group, local,
                                          /*root_pos=*/0, data,
                                          comm.tag_base + 2,
                                          comm.timeout_ms, comm.pool,
                                          comm.codec.kind));
  }
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status ReduceScatter(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  common::BufferPool* pool = comm.pool;
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  const int d = EffectivePipelineDepth(len, n, comm.pipeline_depth);
  SliceWindow carry;
  AIACC_RETURN_IF_ERROR(PipelinedReduceScatterPhase(
      *comm.transport, me, next, prev, n, chunk, me, inner, comm.tag_base,
      comm.timeout_ms, pool, d, carry, CodecKind::kNone, {}));
  // Rank r now owns reduced chunk (r + 1) mod n; rotate ownership convention
  // so rank r owns chunk r: one extra pass of the owned chunk to `next`.
  std::span<float> owned = chunk(me + 1);
  comm.transport->Send(me, next, comm.tag_base + 1,
                       FillSendBuffer(pool, std::move(carry[0]), owned));
  carry[0] = transport::Payload();
  auto received = TimedRecv(*comm.transport, comm.timeout_ms, me, prev,
                            comm.tag_base + 1);
  if (!received.ok()) return received.status();
  std::span<float> mine = chunk(me);
  AIACC_RETURN_IF_ERROR(CheckSize(*received, mine.size()));
  std::copy(received->begin(), received->end(), mine.begin());
  ReleasePayload(pool, std::move(*received));
  ReleaseWindow(pool, carry);
  FinalizeAvg(mine, n, op);
  return Status::Ok();
}

Status AllGather(const Comm& comm, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) return Status::Ok();
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  common::BufferPool* pool = comm.pool;
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  const int d = EffectivePipelineDepth(len, n, comm.pipeline_depth);
  SliceWindow carry;
  AIACC_RETURN_IF_ERROR(PipelinedAllGatherPhase(
      *comm.transport, me, next, prev, n, chunk, me, comm.tag_base,
      comm.timeout_ms, pool, d, carry, CodecKind::kNone));
  ReleaseWindow(pool, carry);
  return Status::Ok();
}

Status Broadcast(const Comm& comm, int root, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  return BroadcastOnRing(*comm.transport, ring, comm.rank, root, data,
                         comm.tag_base, comm.timeout_ms, comm.pool);
}

Status Reduce(const Comm& comm, int root, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  // Chain along the ring ending at root: rank root+1 starts, each rank
  // accumulates its predecessor's partial into a scratch copy and forwards.
  const int me = comm.rank;
  const int position = (me - root - 1 + n) % n;  // 0 = chain head
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  if (position == 0) {
    comm.transport->Send(me, next, comm.tag_base,
                         FillSendBuffer(comm.pool, {}, data));
    return Status::Ok();
  }
  auto received =
      TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
  if (!received.ok()) return received.status();
  if (me == root) {
    AIACC_RETURN_IF_ERROR(RecvReduce(data, *received, inner));
    ReleasePayload(comm.pool, std::move(*received));
    FinalizeAvg(data, n, op);
    return Status::Ok();
  }
  AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
  // Accumulate into the received scratch so this rank's own buffer stays
  // untouched, then forward the same buffer (zero extra allocations).
  transport::Payload partial = std::move(*received);
  Accumulate(std::span<float>(partial), data, inner);
  comm.transport->Send(me, next, comm.tag_base, std::move(partial));
  return Status::Ok();
}

Status Gather(const Comm& comm, int root, std::span<const float> contribution,
              std::span<float> gathered) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  common::BufferPool* pool = comm.pool;
  if (comm.rank != root) {
    comm.transport->Send(comm.rank, root, comm.tag_base,
                         FillSendBuffer(pool, {}, contribution));
    return Status::Ok();
  }
  AIACC_CHECK(gathered.size() ==
              contribution.size() * static_cast<std::size_t>(n));
  auto block_of = [&](int r) {
    return gathered.subspan(
        static_cast<std::size_t>(r) * contribution.size(),
        contribution.size());
  };
  std::copy(contribution.begin(), contribution.end(), block_of(root).begin());

  auto consume = [&](int r, transport::Payload&& payload) -> Status {
    AIACC_RETURN_IF_ERROR(CheckSize(payload, contribution.size()));
    std::copy(payload.begin(), payload.end(), block_of(r).begin());
    ReleasePayload(pool, std::move(payload));
    return Status::Ok();
  };

  std::vector<int> pending;
  pending.reserve(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n; ++r) {
    if (r != root) pending.push_back(r);
  }
  // Drain peers in completion order: sweep every pending peer with TryRecv;
  // when a full sweep makes no progress, park briefly on one pending peer
  // (rotating) so the loop sleeps instead of spinning — an arrival from the
  // parked peer or a Shutdown wakes it immediately, an arrival from any
  // other peer is picked up by the next sweep within the park quantum.
  // `timeout_ms` bounds the silence between two successful receives, the
  // same per-message deadline the strict rank-order scan enforced.
  using Clock = std::chrono::steady_clock;
  const bool bounded = comm.timeout_ms > 0;
  constexpr std::chrono::milliseconds kParkQuantum{5};
  auto wait_start = Clock::now();
  std::size_t park = 0;
  while (!pending.empty()) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end();) {
      if (auto payload = comm.transport->TryRecv(root, *it, comm.tag_base)) {
        AIACC_RETURN_IF_ERROR(consume(*it, std::move(*payload)));
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
    if (pending.empty()) break;
    if (progressed) {
      wait_start = Clock::now();
      continue;
    }
    const int r = pending[park++ % pending.size()];
    auto quantum = kParkQuantum;
    if (bounded) {
      const auto remaining =
          std::chrono::milliseconds(comm.timeout_ms) -
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - wait_start);
      if (remaining <= std::chrono::milliseconds::zero()) {
        return DeadlineExceeded("gather: no contribution within " +
                                std::to_string(comm.timeout_ms) +
                                "ms; still missing " +
                                std::to_string(pending.size()) + " rank(s)");
      }
      quantum = std::min(quantum, remaining);
    }
    auto received = comm.transport->RecvFor(root, r, comm.tag_base, quantum);
    if (received.ok()) {
      AIACC_RETURN_IF_ERROR(consume(r, std::move(*received)));
      pending.erase(std::find(pending.begin(), pending.end(), r));
      wait_start = Clock::now();
    } else if (received.status().code() != StatusCode::kDeadlineExceeded) {
      return received.status();  // e.g. Unavailable after Shutdown
    }
    // Park quantum expired: sweep again.
  }
  return Status::Ok();
}

Status Scatter(const Comm& comm, int root, std::span<const float> scattered,
               std::span<float> chunk) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (comm.rank == root) {
    AIACC_CHECK(scattered.size() == chunk.size() * static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto block = scattered.subspan(
          static_cast<std::size_t>(r) * chunk.size(), chunk.size());
      if (r == root) {
        std::copy(block.begin(), block.end(), chunk.begin());
      } else {
        comm.transport->Send(root, r, comm.tag_base,
                             FillSendBuffer(comm.pool, {}, block));
      }
    }
  } else {
    auto received = TimedRecv(*comm.transport, comm.timeout_ms, comm.rank,
                              root, comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, chunk.size()));
    std::copy(received->begin(), received->end(), chunk.begin());
    ReleasePayload(comm.pool, std::move(*received));
  }
  return Status::Ok();
}

Status AllToAll(const Comm& comm, std::span<const float> send,
                std::span<float> recv) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  AIACC_CHECK(send.size() == recv.size());
  AIACC_CHECK(send.size() % static_cast<std::size_t>(n) == 0);
  const std::size_t block = send.size() / static_cast<std::size_t>(n);
  // Post all sends first (non-blocking), then receive from every peer.
  for (int d = 0; d < n; ++d) {
    auto out = send.subspan(static_cast<std::size_t>(d) * block, block);
    if (d == comm.rank) {
      std::copy(out.begin(), out.end(),
                recv.begin() + static_cast<std::ptrdiff_t>(d) *
                                   static_cast<std::ptrdiff_t>(block));
    } else {
      comm.transport->Send(comm.rank, d, comm.tag_base,
                           FillSendBuffer(comm.pool, {}, out));
    }
  }
  for (int s = 0; s < n; ++s) {
    if (s == comm.rank) continue;
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, comm.rank, s,
                  comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, block));
    std::copy(received->begin(), received->end(),
              recv.begin() + static_cast<std::ptrdiff_t>(s) *
                                 static_cast<std::ptrdiff_t>(block));
    ReleasePayload(comm.pool, std::move(*received));
  }
  return Status::Ok();
}

int MultiChannelWorkerCount() {
  return static_cast<int>(GlobalChannelWorkers().pool.size());
}

Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels) {
  AIACC_CHECK(num_channels >= 1);
  // Fall back to a single ring when the payload cannot feed every channel
  // at least one element per ring chunk *per pipeline slice* — combined
  // with the per-ring EffectivePipelineDepth clamp this makes degenerate
  // empty slices impossible at any channel count.
  const std::size_t depth = static_cast<std::size_t>(
      std::clamp(comm.pipeline_depth, 1, kMaxPipelineDepth));
  if (num_channels == 1 ||
      data.size() < static_cast<std::size_t>(num_channels) *
                        static_cast<std::size_t>(comm.world_size) * depth) {
    return RingAllReduce(comm, data, op);
  }
  // Channel 0 runs on the calling thread, so k channels consume k-1 pool
  // workers. Reserving before submitting keeps pool size >= the number of
  // channel tasks in flight across *all* concurrent invocations — ring
  // tasks block on their peers, so every submitted task must be running for
  // any of them to finish.
  ChannelWorkers& workers = GlobalChannelWorkers();
  const std::size_t extra = static_cast<std::size_t>(num_channels - 1);
  {
    common::MutexLock lock(workers.mu);
    workers.reserved += extra;
    workers.pool.EnsureWorkers(workers.reserved);
  }

  // Stack-local completion latch: acquired last, nests under nothing.
  struct Completion {
    common::Mutex mu{"mc-completion"};
    common::CondVar cv;
    int remaining GUARDED_BY(mu) = 0;
  } done;
  {
    common::MutexLock lock(done.mu);
    done.remaining = static_cast<int>(extra);
  }
  std::vector<Status> channel_status(static_cast<std::size_t>(num_channels));
  // One runner for every channel — the pool workers and the calling thread
  // (which runs channel 0 inline) build the sub-Comm/slice identically.
  // Safe to capture `comm`/`data` by reference/value: the invocation blocks
  // on the completion latch before returning.
  auto run_channel = [&comm, data, op, num_channels](int c) -> Status {
    const std::size_t b = ChunkBegin(data.size(), num_channels, c);
    const std::size_t e = ChunkBegin(data.size(), num_channels, c + 1);
    Comm sub = comm;
    // Each channel gets a disjoint tag namespace (collective/tags.h).
    sub.tag_base = ChannelTagBase(comm.tag_base, c);
    AIACC_TRACE_SPAN_IDX("comm.channel", "channel", c);
    return RingAllReduce(sub, data.subspan(b, e - b), op);
  };
  for (int c = 1; c < num_channels; ++c) {
    Status* slot = &channel_status[static_cast<std::size_t>(c)];
    workers.pool.Submit([run_channel, slot, &done, c] {
      *slot = run_channel(c);
      common::MutexLock lock(done.mu);
      if (--done.remaining == 0) done.cv.NotifyAll();
    });
  }
  channel_status[0] = run_channel(0);
  {
    common::MutexLock lock(done.mu);
    while (done.remaining != 0) done.cv.Wait(lock);
  }
  {
    common::MutexLock lock(workers.mu);
    workers.reserved -= extra;
  }
  for (const Status& st : channel_status) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels,
                             ChannelHealthTracker* health) {
  if (health == nullptr) {
    return MultiChannelAllReduce(comm, data, op, num_channels);
  }
  AIACC_CHECK(num_channels >= 1);
  AIACC_CHECK(health->options().world_size == comm.world_size);
  // Same small-payload fallback condition as the plain overload — it only
  // depends on values identical across ranks, so either every rank takes
  // it (and skips the tracker round entirely) or none does.
  const std::size_t depth = static_cast<std::size_t>(
      std::clamp(comm.pipeline_depth, 1, kMaxPipelineDepth));
  if (num_channels == 1 ||
      data.size() < static_cast<std::size_t>(num_channels) *
                        static_cast<std::size_t>(comm.world_size) * depth) {
    return RingAllReduce(comm, data, op);
  }

  std::uint64_t inv = 0;
  std::vector<int> plan_tags;
  const std::vector<int> plan =
      health->PlanFor(comm.rank, num_channels, &inv, &plan_tags);
  const int m = static_cast<int>(plan.size());

  // Snapshot the input: a failed channel leaves its chunk range partially
  // reduced, and the in-call retry ring must start from the original local
  // contribution on *every* rank (a channel can fail on one rank after
  // completing on another).
  std::vector<float> snapshot = comm.pool != nullptr
                                    ? comm.pool->Acquire(data.size())
                                    : std::vector<float>(data.size());
  std::copy(data.begin(), data.end(), snapshot.begin());
  const auto release_snapshot = [&] {
    if (comm.pool != nullptr) comm.pool->Release(std::move(snapshot));
  };

  ChannelWorkers& workers = GlobalChannelWorkers();
  const std::size_t extra = static_cast<std::size_t>(m - 1);
  {
    common::MutexLock lock(workers.mu);
    workers.reserved += extra;
    workers.pool.EnsureWorkers(workers.reserved);
  }
  struct Completion {
    common::Mutex mu{"mc-completion"};
    common::CondVar cv;
    int remaining GUARDED_BY(mu) = 0;
  } done;
  {
    common::MutexLock lock(done.mu);
    done.remaining = static_cast<int>(extra);
  }
  std::vector<Status> channel_status(static_cast<std::size_t>(m));
  // Plan position j owns chunk j of m (the rebalancing: fewer active
  // channels = wider chunks) and runs on the *channel's* agreed home
  // namespace — its epoch-0 tags inside the caller's namespace until its
  // first failure, a fresh agreed epoch home afterwards (a failed ring
  // strands stale messages on the old tags forever).
  auto run_channel = [&comm, data, op, m, &plan, &plan_tags](int j) -> Status {
    const std::size_t b = ChunkBegin(data.size(), m, j);
    const std::size_t e = ChunkBegin(data.size(), m, j + 1);
    Comm sub = comm;
    const int agreed = plan_tags[static_cast<std::size_t>(j)];
    sub.tag_base =
        agreed >= 0
            ? agreed
            : ChannelTagBase(comm.tag_base, plan[static_cast<std::size_t>(j)]);
    AIACC_TRACE_SPAN_IDX("comm.channel", "channel",
                         plan[static_cast<std::size_t>(j)]);
    return RingAllReduce(sub, data.subspan(b, e - b), op);
  };
  for (int j = 1; j < m; ++j) {
    Status* slot = &channel_status[static_cast<std::size_t>(j)];
    workers.pool.Submit([run_channel, slot, &done, j] {
      *slot = run_channel(j);
      common::MutexLock lock(done.mu);
      if (--done.remaining == 0) done.cv.NotifyAll();
    });
  }
  channel_status[0] = run_channel(0);
  {
    common::MutexLock lock(done.mu);
    while (done.remaining != 0) done.cv.Wait(lock);
  }
  {
    common::MutexLock lock(workers.mu);
    workers.reserved -= extra;
  }

  // Every rank reports — even on shutdown — or its peers block out their
  // full agreement timeout waiting for this invocation.
  std::vector<char> ok(static_cast<std::size_t>(m), 1);
  for (int j = 0; j < m; ++j) {
    if (!channel_status[static_cast<std::size_t>(j)].ok()) {
      ok[static_cast<std::size_t>(j)] = 0;
    }
  }
  Result<std::vector<ChannelHealthTracker::RetrySlot>> agreed =
      health->ReportAndAgree(inv, comm.rank, ok);
  if (!agreed.ok()) {
    release_snapshot();
    return agreed.status();
  }
  for (const ChannelHealthTracker::RetrySlot& slot : *agreed) {
    const auto j = static_cast<std::size_t>(
        std::find(plan.begin(), plan.end(), slot.channel) - plan.begin());
    AIACC_CHECK(j < plan.size());
    const std::size_t b = ChunkBegin(data.size(), m, static_cast<int>(j));
    const std::size_t e = ChunkBegin(data.size(), m, static_cast<int>(j) + 1);
    std::copy(snapshot.begin() + static_cast<std::ptrdiff_t>(b),
              snapshot.begin() + static_cast<std::ptrdiff_t>(e),
              data.begin() + static_cast<std::ptrdiff_t>(b));
    Comm sub = comm;
    sub.tag_base = slot.tag_base;
    sub.pipeline_depth = 1;  // degraded retry: minimal in-flight state
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightSeverity::kWarn, "collective.channel", "retry",
        comm.rank, slot.channel, slot.tag_base);
    AIACC_TRACE_SPAN_IDX("comm.channel", "retry", slot.channel);
    const Status retried = RingAllReduce(sub, data.subspan(b, e - b), op);
    if (!retried.ok()) {
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kError, "collective.channel",
          "retry-failed", comm.rank, slot.channel, slot.tag_base,
          /*detail0=*/static_cast<std::int64_t>(retried.code()));
      // Best effort: the dump itself logs on failure.
      (void)telemetry::FlightRecorder::Global().DumpToEnvDir(
          "channel-failure");
      release_snapshot();
      return retried;
    }
  }
  release_snapshot();
  return Status::Ok();
}

}  // namespace aiacc::collective
