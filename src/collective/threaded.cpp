#include "collective/threaded.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace aiacc::collective {
namespace {

/// Receive honouring the Comm deadline (<= 0 blocks forever).
Result<transport::Payload> TimedRecv(transport::Transport& tr,
                                     std::int64_t timeout_ms, int rank,
                                     int src, int tag) {
  if (timeout_ms > 0) {
    return tr.RecvFor(rank, src, tag, std::chrono::milliseconds(timeout_ms));
  }
  return tr.Recv(rank, src, tag);
}

Status CheckSize(const transport::Payload& received, std::size_t expected) {
  if (received.size() != expected) {
    return Internal("collective payload size mismatch: got " +
                    std::to_string(received.size()) + ", want " +
                    std::to_string(expected));
  }
  return Status::Ok();
}

/// Ring all-reduce over an arbitrary ordered set of global ranks.
/// `op` must not be kAvg (callers finalize averaging themselves so that
/// hierarchical composition divides exactly once).
Status RingAllReduceOnRing(transport::Transport& tr,
                           const std::vector<int>& ring, int my_pos,
                           std::span<float> data, ReduceOp op, int tag,
                           std::int64_t timeout_ms) {
  AIACC_CHECK(op != ReduceOp::kAvg);
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const std::size_t len = data.size();

  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    const std::size_t e = ChunkBegin(len, n, cc + 1);
    return data.subspan(b, e - b);
  };

  // Reduce-scatter: after step s, each rank has accumulated s+1 inputs into
  // the chunk it just received.
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(my_pos - s);
    tr.Send(me, next, tag, transport::Payload(to_send.begin(), to_send.end()));
    auto received = TimedRecv(tr, timeout_ms, me, prev, tag);
    if (!received.ok()) return received.status();
    std::span<float> target = chunk(my_pos - s - 1);
    AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
    Accumulate(target, *received, op);
  }
  // All-gather: circulate the fully-reduced chunks.
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(my_pos - s + 1);
    tr.Send(me, next, tag, transport::Payload(to_send.begin(), to_send.end()));
    auto received = TimedRecv(tr, timeout_ms, me, prev, tag);
    if (!received.ok()) return received.status();
    std::span<float> target = chunk(my_pos - s);
    AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
    std::copy(received->begin(), received->end(), target.begin());
  }
  return Status::Ok();
}

Status BroadcastOnRing(transport::Transport& tr, const std::vector<int>& ring,
                       int my_pos, int root_pos, std::span<float> data,
                       int tag, std::int64_t timeout_ms) {
  const int n = static_cast<int>(ring.size());
  if (n <= 1) return Status::Ok();
  const int me = ring[static_cast<std::size_t>(my_pos)];
  const int next = ring[static_cast<std::size_t>((my_pos + 1) % n)];
  const int prev = ring[static_cast<std::size_t>((my_pos + n - 1) % n)];
  const bool is_root = my_pos == root_pos;
  const bool next_is_root = (my_pos + 1) % n == root_pos;
  if (!is_root) {
    auto received = TimedRecv(tr, timeout_ms, me, prev, tag);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
    std::copy(received->begin(), received->end(), data.begin());
  }
  if (!next_is_root) {
    tr.Send(me, next, tag, transport::Payload(data.begin(), data.end()));
  }
  return Status::Ok();
}

}  // namespace

std::size_t ChunkBegin(std::size_t len, int n_chunks, int chunk) {
  return len * static_cast<std::size_t>(chunk) /
         static_cast<std::size_t>(n_chunks);
}

Status RingAllReduce(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, ring, comm.rank,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms));
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status HierarchicalAllReduce(const Comm& comm, int gpus_per_host,
                             std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  AIACC_CHECK(gpus_per_host >= 1);
  AIACC_CHECK(comm.world_size % gpus_per_host == 0);
  const int host = comm.rank / gpus_per_host;
  const int local = comm.rank % gpus_per_host;
  const int num_hosts = comm.world_size / gpus_per_host;
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;

  // Phase 1: ring all-reduce inside the host group (over NVLink in the
  // paper) — every member ends with the group total.
  std::vector<int> group(static_cast<std::size_t>(gpus_per_host));
  for (int g = 0; g < gpus_per_host; ++g) {
    group[static_cast<std::size_t>(g)] = host * gpus_per_host + g;
  }
  AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, group, local,
                                            data, inner, comm.tag_base,
                                            comm.timeout_ms));

  // Phase 2: group leaders ring all-reduce across hosts.
  if (num_hosts > 1) {
    if (local == 0) {
      std::vector<int> leaders(static_cast<std::size_t>(num_hosts));
      for (int h = 0; h < num_hosts; ++h) {
        leaders[static_cast<std::size_t>(h)] = h * gpus_per_host;
      }
      AIACC_RETURN_IF_ERROR(RingAllReduceOnRing(*comm.transport, leaders,
                                                host, data, inner,
                                                comm.tag_base + 1,
                                                comm.timeout_ms));
    }
    // Phase 3: leaders broadcast the global result inside their group.
    AIACC_RETURN_IF_ERROR(BroadcastOnRing(*comm.transport, group, local,
                                          /*root_pos=*/0, data,
                                          comm.tag_base + 2,
                                          comm.timeout_ms));
  }
  FinalizeAvg(data, comm.world_size, op);
  return Status::Ok();
}

Status ReduceScatter(const Comm& comm, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(me - s);
    comm.transport->Send(me, next, comm.tag_base,
                         transport::Payload(to_send.begin(), to_send.end()));
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
    if (!received.ok()) return received.status();
    std::span<float> target = chunk(me - s - 1);
    AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
    Accumulate(target, *received, inner);
  }
  // Rank r now owns reduced chunk (r + 1) mod n; rotate ownership convention
  // so rank r owns chunk r: one extra pass of the owned chunk to `next`.
  std::span<float> owned = chunk(me + 1);
  comm.transport->Send(me, next, comm.tag_base + 1,
                       transport::Payload(owned.begin(), owned.end()));
  auto received = TimedRecv(*comm.transport, comm.timeout_ms, me, prev,
                            comm.tag_base + 1);
  if (!received.ok()) return received.status();
  std::span<float> mine = chunk(me);
  AIACC_RETURN_IF_ERROR(CheckSize(*received, mine.size()));
  std::copy(received->begin(), received->end(), mine.begin());
  FinalizeAvg(mine, n, op);
  return Status::Ok();
}

Status AllGather(const Comm& comm, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) return Status::Ok();
  const int me = comm.rank;
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  const std::size_t len = data.size();
  auto chunk = [&](int c) -> std::span<float> {
    const int cc = ((c % n) + n) % n;
    const std::size_t b = ChunkBegin(len, n, cc);
    return data.subspan(b, ChunkBegin(len, n, cc + 1) - b);
  };
  for (int s = 0; s < n - 1; ++s) {
    std::span<float> to_send = chunk(me - s);
    comm.transport->Send(me, next, comm.tag_base,
                         transport::Payload(to_send.begin(), to_send.end()));
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
    if (!received.ok()) return received.status();
    std::span<float> target = chunk(me - s - 1);
    AIACC_RETURN_IF_ERROR(CheckSize(*received, target.size()));
    std::copy(received->begin(), received->end(), target.begin());
  }
  return Status::Ok();
}

Status Broadcast(const Comm& comm, int root, std::span<float> data) {
  AIACC_CHECK(comm.transport != nullptr);
  std::vector<int> ring(static_cast<std::size_t>(comm.world_size));
  for (int r = 0; r < comm.world_size; ++r) ring[static_cast<std::size_t>(r)] = r;
  return BroadcastOnRing(*comm.transport, ring, comm.rank, root, data,
                         comm.tag_base, comm.timeout_ms);
}

Status Reduce(const Comm& comm, int root, std::span<float> data, ReduceOp op) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (n <= 1) {
    FinalizeAvg(data, 1, op);
    return Status::Ok();
  }
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  // Chain along the ring ending at root: rank root+1 starts, each rank
  // accumulates its predecessor's partial into a scratch copy and forwards.
  const int me = comm.rank;
  const int position = (me - root - 1 + n) % n;  // 0 = chain head
  const int next = (me + 1) % n;
  const int prev = (me + n - 1) % n;
  if (position == 0) {
    comm.transport->Send(me, next, comm.tag_base,
                         transport::Payload(data.begin(), data.end()));
    return Status::Ok();
  }
  auto received =
      TimedRecv(*comm.transport, comm.timeout_ms, me, prev, comm.tag_base);
  if (!received.ok()) return received.status();
  AIACC_RETURN_IF_ERROR(CheckSize(*received, data.size()));
  if (me == root) {
    Accumulate(data, *received, inner);
    FinalizeAvg(data, n, op);
    return Status::Ok();
  }
  // Accumulate into a scratch so this rank's own buffer stays untouched.
  transport::Payload partial = std::move(*received);
  Accumulate(std::span<float>(partial), data, inner);
  comm.transport->Send(me, next, comm.tag_base, std::move(partial));
  return Status::Ok();
}

Status Gather(const Comm& comm, int root, std::span<const float> contribution,
              std::span<float> gathered) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (comm.rank == root) {
    AIACC_CHECK(gathered.size() == contribution.size() * n);
    std::copy(contribution.begin(), contribution.end(),
              gathered.begin() +
                  static_cast<std::ptrdiff_t>(comm.rank) *
                      static_cast<std::ptrdiff_t>(contribution.size()));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      auto received =
          TimedRecv(*comm.transport, comm.timeout_ms, root, r, comm.tag_base);
      if (!received.ok()) return received.status();
      AIACC_RETURN_IF_ERROR(CheckSize(*received, contribution.size()));
      std::copy(received->begin(), received->end(),
                gathered.begin() + static_cast<std::ptrdiff_t>(r) *
                                       static_cast<std::ptrdiff_t>(
                                           contribution.size()));
    }
  } else {
    comm.transport->Send(
        comm.rank, root, comm.tag_base,
        transport::Payload(contribution.begin(), contribution.end()));
  }
  return Status::Ok();
}

Status Scatter(const Comm& comm, int root, std::span<const float> scattered,
               std::span<float> chunk) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  if (comm.rank == root) {
    AIACC_CHECK(scattered.size() == chunk.size() * n);
    for (int r = 0; r < n; ++r) {
      auto block = scattered.subspan(
          static_cast<std::size_t>(r) * chunk.size(), chunk.size());
      if (r == root) {
        std::copy(block.begin(), block.end(), chunk.begin());
      } else {
        comm.transport->Send(root, r, comm.tag_base,
                             transport::Payload(block.begin(), block.end()));
      }
    }
  } else {
    auto received = TimedRecv(*comm.transport, comm.timeout_ms, comm.rank,
                              root, comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, chunk.size()));
    std::copy(received->begin(), received->end(), chunk.begin());
  }
  return Status::Ok();
}

Status AllToAll(const Comm& comm, std::span<const float> send,
                std::span<float> recv) {
  AIACC_CHECK(comm.transport != nullptr);
  const int n = comm.world_size;
  AIACC_CHECK(send.size() == recv.size());
  AIACC_CHECK(send.size() % static_cast<std::size_t>(n) == 0);
  const std::size_t block = send.size() / static_cast<std::size_t>(n);
  // Post all sends first (non-blocking), then receive from every peer.
  for (int d = 0; d < n; ++d) {
    auto out = send.subspan(static_cast<std::size_t>(d) * block, block);
    if (d == comm.rank) {
      std::copy(out.begin(), out.end(),
                recv.begin() + static_cast<std::ptrdiff_t>(d) *
                                   static_cast<std::ptrdiff_t>(block));
    } else {
      comm.transport->Send(comm.rank, d, comm.tag_base,
                           transport::Payload(out.begin(), out.end()));
    }
  }
  for (int s = 0; s < n; ++s) {
    if (s == comm.rank) continue;
    auto received =
        TimedRecv(*comm.transport, comm.timeout_ms, comm.rank, s,
                  comm.tag_base);
    if (!received.ok()) return received.status();
    AIACC_RETURN_IF_ERROR(CheckSize(*received, block));
    std::copy(received->begin(), received->end(),
              recv.begin() + static_cast<std::ptrdiff_t>(s) *
                                 static_cast<std::ptrdiff_t>(block));
  }
  return Status::Ok();
}

Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels) {
  AIACC_CHECK(num_channels >= 1);
  if (num_channels == 1 || data.size() < static_cast<std::size_t>(
                               num_channels * comm.world_size)) {
    return RingAllReduce(comm, data, op);
  }
  std::vector<std::thread> workers;
  std::vector<Status> channel_status(static_cast<std::size_t>(num_channels));
  workers.reserve(static_cast<std::size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    const std::size_t b = ChunkBegin(data.size(), num_channels, c);
    const std::size_t e = ChunkBegin(data.size(), num_channels, c + 1);
    Comm sub = comm;
    // Each channel gets a disjoint tag namespace (ring + hierarchical use at
    // most 3 tags).
    sub.tag_base = comm.tag_base + 16 * (c + 1);
    Status* slot = &channel_status[static_cast<std::size_t>(c)];
    workers.emplace_back([sub, slice = data.subspan(b, e - b), op, slot] {
      *slot = RingAllReduce(sub, slice, op);
    });
  }
  for (auto& w : workers) w.join();
  for (const Status& st : channel_status) {
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace aiacc::collective
