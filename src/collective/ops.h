// Reduction operators shared by the threaded and simulated collectives.
//
// Accumulate is the arithmetic inner loop of every reduce-scatter step, so
// it is written to vectorize: the source and destination are declared
// non-aliasing (`restrict` — a received payload and a caller tensor chunk
// are always distinct buffers) and the body is unrolled in fixed-width
// blocks, which lets the compiler emit straight-line SIMD with no runtime
// aliasing checks and no per-element branch. RecvReduce fuses the
// receive-side size validation with the reduction so a ring step consumes
// the mailbox buffer directly in one pass — no staging copy, no second
// traversal.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>

#include "common/logging.h"
#include "common/status.h"

#if defined(_MSC_VER)
#define AIACC_RESTRICT __restrict
#else
#define AIACC_RESTRICT __restrict__
#endif

namespace aiacc::collective {

/// kBitAnd treats each float lane as an opaque 32-bit pattern and ANDs the
/// bits — the reduction behind bit-packed sync rounds, where one float
/// carries the readiness bits of 32 gradients and the all-reduce computes
/// their intersection across ranks. It is safe to route arbitrary bit
/// patterns (including NaN payloads) through the collectives: payloads are
/// only moved/copied in transit, and Accumulate is the sole place values
/// are touched.
enum class ReduceOp : std::uint8_t { kSum, kAvg, kMin, kMax, kBitAnd };

namespace detail {

/// a[i] = f(a[i], b[i]) over two non-overlapping arrays. The 8-wide body is
/// branch-free and alias-free, so it compiles to packed vector ops; the
/// scalar tail handles odd lengths and keeps every offset/alignment legal.
template <typename F>
inline void VectorApply(float* AIACC_RESTRICT a, const float* AIACC_RESTRICT b,
                        std::size_t n, F f) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a[i + 0] = f(a[i + 0], b[i + 0]);
    a[i + 1] = f(a[i + 1], b[i + 1]);
    a[i + 2] = f(a[i + 2], b[i + 2]);
    a[i + 3] = f(a[i + 3], b[i + 3]);
    a[i + 4] = f(a[i + 4], b[i + 4]);
    a[i + 5] = f(a[i + 5], b[i + 5]);
    a[i + 6] = f(a[i + 6], b[i + 6]);
    a[i + 7] = f(a[i + 7], b[i + 7]);
  }
  for (; i < n; ++i) a[i] = f(a[i], b[i]);
}

}  // namespace detail

/// acc[i] = op(acc[i], in[i]). kAvg accumulates as a sum; callers divide by
/// world size at the end (FinalizeAvg). `acc` and `in` must not overlap.
inline void Accumulate(std::span<float> acc, std::span<const float> in,
                       ReduceOp op) {
  AIACC_CHECK(acc.size() == in.size());
  float* AIACC_RESTRICT a = acc.data();
  const float* AIACC_RESTRICT b = in.data();
  const std::size_t n = acc.size();
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      detail::VectorApply(a, b, n, [](float x, float y) { return x + y; });
      break;
    case ReduceOp::kMin:
      detail::VectorApply(a, b, n,
                          [](float x, float y) { return y < x ? y : x; });
      break;
    case ReduceOp::kMax:
      detail::VectorApply(a, b, n,
                          [](float x, float y) { return y > x ? y : x; });
      break;
    case ReduceOp::kBitAnd:
      detail::VectorApply(a, b, n, [](float x, float y) {
        return std::bit_cast<float>(std::bit_cast<std::uint32_t>(x) &
                                    std::bit_cast<std::uint32_t>(y));
      });
      break;
  }
}

/// Fused receive-side reduction: validate that the just-received payload
/// matches the target chunk, then fold it into `acc` in a single pass. The
/// ring reduce-scatter loop calls this straight on the mailbox buffer.
/// Returns Internal on a size mismatch (framing bug or corrupted peer).
inline Status RecvReduce(std::span<float> acc, std::span<const float> received,
                         ReduceOp op) {
  if (received.size() != acc.size()) {
    return Internal("collective payload size mismatch: got " +
                    std::to_string(received.size()) + ", want " +
                    std::to_string(acc.size()));
  }
  Accumulate(acc, received, op);
  return Status::Ok();
}

inline void FinalizeAvg(std::span<float> acc, int world_size, ReduceOp op) {
  if (op != ReduceOp::kAvg) return;
  const float inv = 1.0f / static_cast<float>(world_size);
  for (float& v : acc) v *= inv;
}

}  // namespace aiacc::collective
