// Reduction operators shared by the threaded and simulated collectives.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/logging.h"

namespace aiacc::collective {

enum class ReduceOp : std::uint8_t { kSum, kAvg, kMin, kMax };

/// acc[i] = op(acc[i], in[i]). kAvg accumulates as a sum; callers divide by
/// world size at the end (FinalizeAvg).
inline void Accumulate(std::span<float> acc, std::span<const float> in,
                       ReduceOp op) {
  AIACC_CHECK(acc.size() == in.size());
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = std::min(acc[i], in[i]);
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = std::max(acc[i], in[i]);
      }
      break;
  }
}

inline void FinalizeAvg(std::span<float> acc, int world_size, ReduceOp op) {
  if (op != ReduceOp::kAvg) return;
  const float inv = 1.0f / static_cast<float>(world_size);
  for (float& v : acc) v *= inv;
}

}  // namespace aiacc::collective
