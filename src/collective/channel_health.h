// Channel health tracking for MultiChannelAllReduce — tier 2 of the fault
// story (tier 1 is in-band retransmission, transport/reliable.h; tier 3 is
// checkpoint recovery, trainer/recovery.h). One tracker is shared by every
// rank of a multi-channel communicator (in-process, like the transport) and
// plays two roles:
//
//   1. *Agreement.* Channel membership must be identical on every rank —
//      ranks running rings over different channel sets deadlock. PlanFor
//      hands every rank the same active-channel list for the same
//      invocation (first arriver computes it from current health state;
//      the rendezvous in ReportAndAgree guarantees no rank can reach
//      invocation i+1 before every rank finished i, so the state the plan
//      reads is identical no matter who arrives first). ReportAndAgree
//      then rendezvouses the per-rank outcomes and returns the globally
//      failed channels (failed anywhere = failed everywhere) plus a fresh
//      never-reused retry tag namespace per failed channel.
//
//   2. *Hysteresis.* Per-channel fault scores decay on success and jump on
//      failure; a score crossing the quarantine threshold removes the
//      channel from subsequent plans (its chunk range rebalances onto the
//      survivors). After a cooldown the channel is re-admitted on
//      probation: a clean probation restores it fully, another failure
//      re-quarantines it with a doubled (capped) cooldown.
//
// Channel 0 is never quarantined: a plan must keep at least one channel,
// and the calling thread always runs one ring inline.
//
// Telemetry (process registry): `channel.quarantines`,
// `channel.readmissions`, `channel.retries`, gauge `channel.active`.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace aiacc::collective {

class ChannelHealthTracker {
 public:
  struct Options {
    int world_size = 1;
    /// Score at/above which a healthy channel is quarantined. Failures add
    /// 1.0; the default means two near-consecutive failures quarantine.
    double quarantine_threshold = 1.5;
    /// Multiplicative score decay per successful invocation.
    double success_decay = 0.5;
    /// Invocations a quarantined channel sits out before probation
    /// (doubles per re-quarantine, capped at max_cooldown).
    int initial_cooldown = 4;
    int max_cooldown = 64;
    /// Consecutive clean invocations on probation before full re-admission.
    int probation_successes = 2;
    /// ReportAndAgree gives up waiting for stragglers after this long (a
    /// rank that aborted mid-collective would otherwise wedge the rest).
    std::int64_t agree_timeout_ms = 30000;
  };

  enum class ChannelState { kHealthy, kProbation, kQuarantined };

  struct ChannelView {
    ChannelState state = ChannelState::kHealthy;
    double score = 0.0;
    int cooldown_remaining = 0;  // quarantined only
    int tag_epoch = 0;           // agreed failure count = home namespace
  };

  /// A channel the current invocation must retry, with the agreed fresh
  /// tag namespace for its recovery ring.
  struct RetrySlot {
    int channel = 0;
    int tag_base = 0;
  };

  explicit ChannelHealthTracker(Options options);
  ChannelHealthTracker(const ChannelHealthTracker&) = delete;
  ChannelHealthTracker& operator=(const ChannelHealthTracker&) = delete;

  /// The agreed active channel list (sorted, non-empty, always contains 0)
  /// for this rank's next invocation; `*invocation_out` identifies the
  /// invocation for ReportAndAgree. Every rank calls once per collective
  /// with the same num_channels. When `tag_bases_out` is non-null it is
  /// filled parallel to the plan: -1 for a channel still on its epoch-0
  /// home (caller derives ChannelTagBase from its own namespace), else the
  /// channel's agreed relocated home ChannelEpochTagBase(channel, epoch).
  /// A failed ring strands half-ring wire state on its tags, so every
  /// agreed failure permanently moves the channel to a fresh epoch home —
  /// quarantine, probation and re-admission all run on clean tags.
  std::vector<int> PlanFor(int rank, int num_channels,
                           std::uint64_t* invocation_out,
                           std::vector<int>* tag_bases_out = nullptr);

  /// Report this rank's per-channel outcomes (indexed like the plan) and
  /// block until every rank reported; returns the agreed retry set (a
  /// channel failed on any rank, with its fresh retry namespace), or
  /// kDeadlineExceeded when a rank never showed up. The last reporter
  /// applies the aggregate to the health state exactly once.
  Result<std::vector<RetrySlot>> ReportAndAgree(std::uint64_t invocation,
                                                int rank,
                                                const std::vector<char>& ok);

  /// Current per-channel states (for tests/telemetry; sized to the largest
  /// num_channels seen).
  [[nodiscard]] std::vector<ChannelView> states() const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct Channel {
    ChannelState state = ChannelState::kHealthy;
    double score = 0.0;
    int cooldown_remaining = 0;
    int cooldown_base = 0;  // next quarantine's cooldown (doubles, capped)
    int probation_left = 0;
    int tag_epoch = 0;      // bumped on every agreed failure
  };
  /// One invocation's rendezvous: the plan (computed by the first arriver)
  /// and the aggregated outcomes (applied by the last reporter).
  struct Invocation {
    std::vector<int> plan;
    std::vector<int> plan_tag_bases;  // parallel to plan; -1 = epoch-0 home
    int planned = 0;     // ranks that fetched the plan
    int reported = 0;    // ranks that reported outcomes
    int delivered = 0;   // ranks that collected the agreed result
    bool resolved = false;
    std::vector<char> failed;          // indexed like plan
    std::vector<RetrySlot> retries;    // agreed result
  };

  void EnsureChannelsLocked(int num_channels) REQUIRES(mu_);
  std::vector<int> ComputePlanLocked(int num_channels) REQUIRES(mu_);
  /// Apply one invocation's aggregate outcome to the health state.
  void ApplyOutcomeLocked(const Invocation& inv) REQUIRES(mu_);

  const Options options_;

  mutable common::Mutex mu_{"channel-health",
                            common::lock_rank::kChannelHealth};
  common::CondVar cv_;
  std::vector<Channel> channels_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> next_invocation_ GUARDED_BY(mu_);  // per rank
  std::map<std::uint64_t, Invocation> invocations_ GUARDED_BY(mu_);
  std::uint64_t next_retry_id_ GUARDED_BY(mu_) = 0;
};

}  // namespace aiacc::collective
