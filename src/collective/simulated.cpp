#include "collective/simulated.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace aiacc::collective {
namespace {

/// Sum/min/max-combine all buffers and distribute the result to every rank.
void ApplyReduction(std::vector<std::span<float>>& buffers, ReduceOp op) {
  if (buffers.empty()) return;
  const int n = static_cast<int>(buffers.size());
  std::span<float> acc = buffers[0];
  const ReduceOp inner = op == ReduceOp::kAvg ? ReduceOp::kSum : op;
  for (int r = 1; r < n; ++r) {
    AIACC_CHECK(buffers[static_cast<std::size_t>(r)].size() == acc.size());
    Accumulate(acc, buffers[static_cast<std::size_t>(r)], inner);
  }
  FinalizeAvg(acc, n, op);
  for (int r = 1; r < n; ++r) {
    std::copy(acc.begin(), acc.end(),
              buffers[static_cast<std::size_t>(r)].begin());
  }
}

}  // namespace

const char* ToString(Algorithm alg) {
  return alg == Algorithm::kRing ? "ring" : "hierarchical";
}

SimCollectives::Participants SimCollectives::ResolveParticipants(
    const std::vector<int>& ranks) const {
  Participants parts;
  if (ranks.empty()) {
    const int world = fabric_.topology().WorldSize();
    parts.ranks.resize(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) parts.ranks[static_cast<std::size_t>(r)] = r;
  } else {
    parts.ranks = ranks;
    std::sort(parts.ranks.begin(), parts.ranks.end());
  }
  for (int r : parts.ranks) {
    const int h = fabric_.topology().HostOfRank(r);
    if (parts.hosts.empty() || parts.hosts.back() != h) {
      parts.hosts.push_back(h);
    }
  }
  std::sort(parts.hosts.begin(), parts.hosts.end());
  parts.hosts.erase(std::unique(parts.hosts.begin(), parts.hosts.end()),
                    parts.hosts.end());
  parts.multi_host = parts.hosts.size() > 1;
  return parts;
}

void SimCollectives::CompleteUnit(Unit& unit) {
  ApplyReduction(unit.buffers, unit.op);
  ++completed_units_;
  if (unit.on_done) unit.on_done(fabric_.engine().Now());
}

void SimCollectives::Start(Unit unit) {
  AIACC_CHECK(unit.bytes_per_rank >= 0.0);
  const Participants parts = ResolveParticipants(unit.ranks);
  const int n = static_cast<int>(parts.ranks.size());
  AIACC_CHECK(n >= 1);
  if (!unit.buffers.empty()) {
    AIACC_CHECK(static_cast<int>(unit.buffers.size()) == n);
  }
  if (n == 1) {
    // Single participant: a fused no-op completing after a kernel-ish delay.
    fabric_.engine().ScheduleAfter(
        fabric_.NvlinkHopCost(),
        [this, u = std::move(unit)]() mutable { CompleteUnit(u); });
    return;
  }
  if (unit.algorithm == Algorithm::kHierarchical && parts.multi_host &&
      fabric_.topology().gpus_per_host > 1) {
    StartHierarchical(std::move(unit), parts);
  } else {
    StartRingPhase(std::move(unit), parts);
  }
}

void SimCollectives::StartRingPhase(Unit unit, const Participants& parts) {
  const int n = static_cast<int>(parts.ranks.size());
  const double ring_factor = 2.0 * (n - 1) / static_cast<double>(n);

  net::Network::FlowSpec spec;
  if (parts.multi_host) {
    for (int h : parts.hosts) {
      spec.path.push_back(fabric_.EgressLink(h));
      spec.path.push_back(fabric_.IngressLink(h));
    }
    // Intra-host segments of the ring also exist; include NVLink links of
    // hosts holding >= 2 participants so an NVLink bottleneck would surface.
    for (std::size_t i = 0; i + 1 < parts.ranks.size(); ++i) {
      const int h0 = fabric_.topology().HostOfRank(parts.ranks[i]);
      const int h1 = fabric_.topology().HostOfRank(parts.ranks[i + 1]);
      if (h0 == h1 &&
          (spec.path.empty() || spec.path.back() != fabric_.NvlinkLink(h0))) {
        spec.path.push_back(fabric_.NvlinkLink(h0));
      }
    }
    spec.rate_cap = fabric_.InterNodeStreamCap();
    // Pipeline-fill latency: each of the 2(n-1) ring steps pays one hop, but
    // only host-boundary hops cross a NIC (one per participating host per
    // lap); intra-host hops ride NVLink.
    const int m = static_cast<int>(parts.hosts.size());
    spec.start_delay = 2.0 * (m * fabric_.InterNodeHopCost() +
                              (n - m) * fabric_.NvlinkHopCost());
  } else {
    spec.path = {fabric_.NvlinkLink(parts.hosts.front())};
    spec.rate_cap = fabric_.params().nvlink_bandwidth;
    spec.start_delay = 2.0 * (n - 1) * fabric_.NvlinkHopCost();
  }
  spec.bytes = unit.bytes_per_rank * ring_factor;
  auto shared = std::make_shared<Unit>(std::move(unit));
  spec.on_complete = [this, shared] { CompleteUnit(*shared); };
  fabric_.network().StartFlow(std::move(spec));
}

void SimCollectives::StartHierarchical(Unit unit, const Participants& parts) {
  // Phase 1: intra-host ring all-reduce on every involved host in parallel
  // (one fluid flow over all their NVLink fabrics).
  // Phase 2: host-leader ring across hosts over the NICs.
  // Phase 3: intra-host broadcast of the reduced result.
  const int m = static_cast<int>(parts.hosts.size());
  const int g = fabric_.topology().gpus_per_host;
  const double s = unit.bytes_per_rank;
  auto shared = std::make_shared<Unit>(std::move(unit));

  std::vector<net::LinkIndex> nvlinks;
  nvlinks.reserve(static_cast<std::size_t>(m));
  for (int h : parts.hosts) nvlinks.push_back(fabric_.NvlinkLink(h));
  std::vector<net::LinkIndex> nics;
  for (int h : parts.hosts) {
    nics.push_back(fabric_.EgressLink(h));
    nics.push_back(fabric_.IngressLink(h));
  }

  const double nv_bw = fabric_.params().nvlink_bandwidth;
  const double intra_factor = 2.0 * (g - 1) / static_cast<double>(g);
  const double inter_factor = 2.0 * (m - 1) / static_cast<double>(m);
  const double bcast_factor = (g - 1) / static_cast<double>(g);

  // Phase 3 (innermost continuation).
  auto phase3 = [this, shared, nvlinks, nv_bw, s, bcast_factor, g] {
    net::Network::FlowSpec spec;
    spec.path = nvlinks;
    spec.bytes = s * bcast_factor;
    spec.rate_cap = nv_bw;
    spec.start_delay = (g - 1) * fabric_.NvlinkHopCost();
    spec.on_complete = [this, shared] { CompleteUnit(*shared); };
    fabric_.network().StartFlow(std::move(spec));
  };
  // Phase 2.
  auto phase2 = [this, nics, s, inter_factor, m, phase3] {
    net::Network::FlowSpec spec;
    spec.path = nics;
    spec.bytes = s * inter_factor;
    spec.rate_cap = fabric_.InterNodeStreamCap();
    spec.start_delay = 2.0 * (m - 1) * fabric_.InterNodeHopCost();
    spec.on_complete = phase3;
    fabric_.network().StartFlow(std::move(spec));
  };
  // Phase 1.
  net::Network::FlowSpec spec;
  spec.path = nvlinks;
  spec.bytes = s * intra_factor;
  spec.rate_cap = nv_bw;
  spec.start_delay = 2.0 * (g - 1) * fabric_.NvlinkHopCost();
  spec.on_complete = phase2;
  fabric_.network().StartFlow(std::move(spec));
}

void SimCollectives::Broadcast(double bytes, int root, std::vector<int> ranks,
                               std::function<void(double)> on_done) {
  Participants parts = ResolveParticipants(ranks);
  const int n = static_cast<int>(parts.ranks.size());
  AIACC_CHECK(std::find(parts.ranks.begin(), parts.ranks.end(), root) !=
              parts.ranks.end());
  if (n <= 1) {
    fabric_.engine().ScheduleAfter(
        fabric_.NvlinkHopCost(),
        [this, cb = std::move(on_done)] { if (cb) cb(fabric_.engine().Now()); });
    return;
  }
  // Pipelined ring broadcast: every adjacency carries `bytes` once; the
  // pipeline fill costs one hop per step (NIC hops at host boundaries).
  net::Network::FlowSpec spec;
  if (parts.multi_host) {
    for (int h : parts.hosts) {
      spec.path.push_back(fabric_.EgressLink(h));
      spec.path.push_back(fabric_.IngressLink(h));
    }
    const int m = static_cast<int>(parts.hosts.size());
    spec.rate_cap = fabric_.InterNodeStreamCap();
    spec.start_delay = m * fabric_.InterNodeHopCost() +
                       (n - m) * fabric_.NvlinkHopCost();
  } else {
    spec.path = {fabric_.NvlinkLink(parts.hosts.front())};
    spec.rate_cap = fabric_.params().nvlink_bandwidth;
    spec.start_delay = (n - 1) * fabric_.NvlinkHopCost();
  }
  spec.bytes = bytes;
  spec.on_complete = [this, cb = std::move(on_done)] {
    if (cb) cb(fabric_.engine().Now());
  };
  fabric_.network().StartFlow(std::move(spec));
}

double SimCollectives::EstimateTime(double bytes_per_rank,
                                    Algorithm algorithm) const {
  const auto& topo = fabric_.topology();
  const int n = topo.WorldSize();
  if (n == 1) return fabric_.NvlinkHopCost();
  const int m = topo.num_hosts;
  const int g = topo.gpus_per_host;
  const double nv_bw = fabric_.params().nvlink_bandwidth;
  const double nic_rate = std::min(fabric_.InterNodeStreamCap(),
                                   fabric_.NicBandwidth());
  if (algorithm == Algorithm::kRing || m == 1 || g == 1) {
    if (m == 1) {
      return 2.0 * (n - 1) * fabric_.NvlinkHopCost() +
             2.0 * bytes_per_rank * (n - 1) / n / nv_bw;
    }
    return 2.0 * (m * fabric_.InterNodeHopCost() +
                  (n - m) * fabric_.NvlinkHopCost()) +
           2.0 * bytes_per_rank * (n - 1) / n / nic_rate;
  }
  // Hierarchical: three chained phases.
  const double p1 = 2.0 * (g - 1) * fabric_.NvlinkHopCost() +
                    2.0 * bytes_per_rank * (g - 1) / g / nv_bw;
  const double p2 = 2.0 * (m - 1) * fabric_.InterNodeHopCost() +
                    2.0 * bytes_per_rank * (m - 1) / m / nic_rate;
  const double p3 = (g - 1) * fabric_.NvlinkHopCost() +
                    bytes_per_rank * (g - 1) / g / nv_bw;
  return p1 + p2 + p3;
}

void SimCollectives::StartDetailedRing(Unit unit) {
  const Participants parts = ResolveParticipants(unit.ranks);
  const int n = static_cast<int>(parts.ranks.size());
  if (n <= 1) {
    Start(std::move(unit));
    return;
  }
  struct State {
    Unit unit;
    std::vector<int> ranks;
    int step = 0;
    int total_steps = 0;
    int pending_flows = 0;
    SimCollectives* self = nullptr;
  };
  auto state = std::make_shared<State>();
  state->unit = std::move(unit);
  state->ranks = parts.ranks;
  state->total_steps = 2 * (n - 1);
  state->self = this;

  const double chunk_bytes = state->unit.bytes_per_rank / n;

  // Each step: every rank sends its current chunk to its successor; the step
  // barrier completes when all n flows land.
  auto launch_step = [this, state, chunk_bytes, n](auto&& self_ref) -> void {
    if (state->step == state->total_steps) {
      CompleteUnit(state->unit);
      return;
    }
    state->pending_flows = n;
    for (int i = 0; i < n; ++i) {
      const int src = state->ranks[static_cast<std::size_t>(i)];
      const int dst = state->ranks[static_cast<std::size_t>((i + 1) % n)];
      const bool local = fabric_.topology().SameHost(src, dst);
      net::Network::FlowSpec spec;
      spec.path = fabric_.PathBetween(src, dst);
      spec.bytes = chunk_bytes;
      spec.rate_cap = local ? fabric_.params().nvlink_bandwidth
                            : fabric_.InterNodeStreamCap();
      spec.start_delay =
          local ? fabric_.NvlinkHopCost() : fabric_.InterNodeHopCost();
      spec.on_complete = [state, self_ref] {
        if (--state->pending_flows == 0) {
          ++state->step;
          self_ref(self_ref);
        }
      };
      fabric_.network().StartFlow(std::move(spec));
    }
  };
  launch_step(launch_step);
}

}  // namespace aiacc::collective
