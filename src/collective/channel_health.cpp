#include "collective/channel_health.h"

#include <algorithm>
#include <chrono>

#include "collective/tags.h"
#include "common/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace aiacc::collective {
namespace {

telemetry::Counter& QuarantineCounter() {
  static telemetry::Counter* c = &telemetry::MetricsRegistry::Global()
                                      .GetCounter("channel.quarantines");
  return *c;
}
telemetry::Counter& ReadmissionCounter() {
  static telemetry::Counter* c = &telemetry::MetricsRegistry::Global()
                                      .GetCounter("channel.readmissions");
  return *c;
}
telemetry::Counter& RetryCounter() {
  static telemetry::Counter* c =
      &telemetry::MetricsRegistry::Global().GetCounter("channel.retries");
  return *c;
}
telemetry::Gauge& ActiveGauge() {
  static telemetry::Gauge* g =
      &telemetry::MetricsRegistry::Global().GetGauge("channel.active");
  return *g;
}

}  // namespace

ChannelHealthTracker::ChannelHealthTracker(Options options)
    : options_(options) {
  AIACC_CHECK(options_.world_size >= 1);
  AIACC_CHECK(options_.quarantine_threshold > 0.0);
  AIACC_CHECK(options_.success_decay >= 0.0 && options_.success_decay < 1.0);
  AIACC_CHECK(options_.initial_cooldown >= 1);
  AIACC_CHECK(options_.max_cooldown >= options_.initial_cooldown);
  AIACC_CHECK(options_.probation_successes >= 1);
  common::MutexLock lock(mu_);
  next_invocation_.assign(static_cast<std::size_t>(options_.world_size), 0);
}

void ChannelHealthTracker::EnsureChannelsLocked(int num_channels) {
  if (channels_.size() < static_cast<std::size_t>(num_channels)) {
    channels_.resize(static_cast<std::size_t>(num_channels));
  }
}

std::vector<int> ChannelHealthTracker::ComputePlanLocked(int num_channels) {
  std::vector<int> plan;
  plan.reserve(static_cast<std::size_t>(num_channels));
  for (int c = 0; c < num_channels; ++c) {
    if (channels_[static_cast<std::size_t>(c)].state !=
        ChannelState::kQuarantined) {
      plan.push_back(c);
    }
  }
  // Channel 0 never quarantines (ApplyOutcomeLocked), so the plan is never
  // empty — but keep the invariant explicit.
  AIACC_CHECK(!plan.empty() && plan.front() == 0);
  ActiveGauge().Set(static_cast<double>(plan.size()));
  return plan;
}

std::vector<int> ChannelHealthTracker::PlanFor(
    int rank, int num_channels, std::uint64_t* invocation_out,
    std::vector<int>* tag_bases_out) {
  AIACC_CHECK(rank >= 0 && rank < options_.world_size);
  AIACC_CHECK(num_channels >= 1 && num_channels <= kMaxTrackedChannels);
  common::MutexLock lock(mu_);
  EnsureChannelsLocked(num_channels);
  const std::uint64_t inv = next_invocation_[static_cast<std::size_t>(rank)]++;
  Invocation& rec = invocations_[inv];
  if (rec.plan.empty()) {
    // First arriver computes the plan; the invocation rendezvous guarantees
    // every rank reads the same health state here (no rank starts
    // invocation i+1 before all ranks finished i).
    rec.plan = ComputePlanLocked(num_channels);
    rec.plan_tag_bases.reserve(rec.plan.size());
    for (const int c : rec.plan) {
      const int epoch = channels_[static_cast<std::size_t>(c)].tag_epoch;
      rec.plan_tag_bases.push_back(epoch == 0 ? -1
                                              : ChannelEpochTagBase(c, epoch));
    }
  }
  ++rec.planned;
  if (invocation_out != nullptr) *invocation_out = inv;
  if (tag_bases_out != nullptr) *tag_bases_out = rec.plan_tag_bases;
  return rec.plan;
}

void ChannelHealthTracker::ApplyOutcomeLocked(const Invocation& inv) {
  for (std::size_t p = 0; p < inv.plan.size(); ++p) {
    const int c = inv.plan[p];
    Channel& ch = channels_[static_cast<std::size_t>(c)];
    if (inv.failed[p] != 0) {
      ch.score += 1.0;
      // The aborted ring stranded half-ring messages on the channel's
      // current tags; relocate its home so no later ring can reduce over
      // them (the in-call retry already runs on its own fresh namespace).
      ++ch.tag_epoch;
      const bool trip = ch.state == ChannelState::kProbation ||
                        ch.score >= options_.quarantine_threshold;
      // Channel 0 carries the calling thread's ring and anchors the plan;
      // it degrades through retries, never through quarantine.
      if (trip && c != 0) {
        ch.state = ChannelState::kQuarantined;
        ch.cooldown_base =
            ch.cooldown_base == 0
                ? options_.initial_cooldown
                : std::min(ch.cooldown_base * 2, options_.max_cooldown);
        ch.cooldown_remaining = ch.cooldown_base;
        ch.probation_left = 0;
        QuarantineCounter().Add();
        telemetry::FlightRecorder::Global().Record(
            telemetry::FlightSeverity::kError, "collective.channel",
            "quarantine", /*rank=*/-1, /*channel=*/c, /*tag=*/-1,
            /*detail0=*/ch.cooldown_remaining, /*detail1=*/ch.tag_epoch);
        LOG_INFO << "channel " << c << " quarantined (score " << ch.score
                 << ", cooldown " << ch.cooldown_remaining << ")";
      }
    } else {
      ch.score *= options_.success_decay;
      if (ch.state == ChannelState::kProbation && --ch.probation_left <= 0) {
        ch.state = ChannelState::kHealthy;
        ch.score = 0.0;
        ReadmissionCounter().Add();
        telemetry::FlightRecorder::Global().Record(
            telemetry::FlightSeverity::kInfo, "collective.channel",
            "readmit", /*rank=*/-1, /*channel=*/c, /*tag=*/-1,
            /*detail0=*/0, /*detail1=*/ch.tag_epoch);
        LOG_INFO << "channel " << c << " re-admitted after clean probation";
      }
    }
  }
  // Quarantine clocks tick once per agreed invocation.
  int channel_index = 0;
  for (Channel& ch : channels_) {
    if (ch.state == ChannelState::kQuarantined &&
        --ch.cooldown_remaining <= 0) {
      ch.state = ChannelState::kProbation;
      ch.probation_left = options_.probation_successes;
      ch.score = 0.0;
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kInfo, "collective.channel", "probation",
          /*rank=*/-1, /*channel=*/channel_index, /*tag=*/-1,
          /*detail0=*/options_.probation_successes, /*detail1=*/ch.tag_epoch);
    }
    ++channel_index;
  }
}

Result<std::vector<ChannelHealthTracker::RetrySlot>>
ChannelHealthTracker::ReportAndAgree(std::uint64_t invocation, int rank,
                                     const std::vector<char>& ok) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.agree_timeout_ms);
  common::MutexLock lock(mu_);
  auto it = invocations_.find(invocation);
  AIACC_CHECK(it != invocations_.end());
  Invocation& rec = it->second;
  AIACC_CHECK(ok.size() == rec.plan.size());
  if (rec.failed.empty()) rec.failed.assign(rec.plan.size(), 0);
  for (std::size_t p = 0; p < ok.size(); ++p) {
    if (ok[p] == 0) rec.failed[p] = 1;
  }
  if (++rec.reported == options_.world_size) {
    // Last reporter: agree the retry set, assign fresh tag namespaces, and
    // apply the aggregate to the health state exactly once.
    for (std::size_t p = 0; p < rec.plan.size(); ++p) {
      if (rec.failed[p] != 0) {
        rec.retries.push_back(
            {rec.plan[p], RetryRingTagBase(next_retry_id_++)});
        RetryCounter().Add();
      }
    }
    ApplyOutcomeLocked(rec);
    rec.resolved = true;
    cv_.NotifyAll();
  }
  while (!rec.resolved) {
    if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout &&
        !rec.resolved) {
      return DeadlineExceeded("channel health agreement: rank " +
                              std::to_string(rank) + " waited " +
                              std::to_string(options_.agree_timeout_ms) +
                              "ms for " +
                              std::to_string(options_.world_size -
                                             rec.reported) +
                              " unreported rank(s)");
    }
  }
  std::vector<RetrySlot> retries = rec.retries;
  if (++rec.delivered == options_.world_size) invocations_.erase(it);
  return retries;
}

std::vector<ChannelHealthTracker::ChannelView> ChannelHealthTracker::states()
    const {
  common::MutexLock lock(mu_);
  std::vector<ChannelView> out;
  out.reserve(channels_.size());
  for (const Channel& ch : channels_) {
    out.push_back({ch.state, ch.score,
                   ch.state == ChannelState::kQuarantined
                       ? ch.cooldown_remaining
                       : 0,
                   ch.tag_epoch});
  }
  return out;
}

}  // namespace aiacc::collective
