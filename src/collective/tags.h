// Shared tag-namespace layout for every component that multiplexes logical
// channels over one Transport. Tags are the threaded analogue of CUDA
// streams: two operations may overlap in time iff their tag namespaces are
// disjoint. This header is the single source of truth for how the namespace
// is carved up — the collectives, the threaded engine, and the Perseus-style
// session API all derive their tags from these constants, so a collision
// (e.g. a multi-channel ring landing on the heartbeat channel) is a
// compile-time error below, not a runtime hang.
#pragma once

namespace aiacc::collective {

/// Reserved heartbeat channel (core/threaded_engine.cpp HeartbeatLoop).
/// Heartbeats use datagram-style TryRecv; nothing else may ever send on
/// this tag, or a strict receiver would steal/corrupt the beat stream.
inline constexpr int kHeartbeatTag = 0;

/// The engine's gradient-synchronization bit-vector rounds (a min
/// all-reduce per round) run on this namespace.
inline constexpr int kSyncTag = 1;

/// Upper bound on consecutive tags a single collective call consumes from
/// its tag_base: hierarchical all-reduce is the widest (intra-host ring,
/// leader ring, intra-host broadcast = 3).
inline constexpr int kTagsPerCollective = 3;

/// Stride between the per-channel namespaces of a multi-channel collective,
/// and the unit callers must advance their own tag cursor by per channel.
/// Wider than kTagsPerCollective so every channel's rings + rotation passes
/// fit with headroom.
inline constexpr int kChannelTagStride = 16;

/// First tag handed to the engine's all-reduce units; unit u owns
/// [kUnitTagBase + u * kUnitTagStride, +kUnitTagStride).
inline constexpr int kUnitTagBase = 1024;
inline constexpr int kUnitTagStride = 4;

/// Tag base of channel `channel` (0-based) inside a multi-channel
/// collective whose own base is `base`. Channels start one stride above
/// `base` so even channel 0 is disjoint from the caller's single-ring
/// namespace (the fallback path uses `base` directly).
[[nodiscard]] constexpr int ChannelTagBase(int base, int channel) noexcept {
  return base + kChannelTagStride * (channel + 1);
}

static_assert(kChannelTagStride > kTagsPerCollective,
              "a channel's rings would spill into the next channel's tags");
static_assert(kUnitTagStride > kTagsPerCollective,
              "a unit's collective would spill into the next unit's tags");
static_assert(kSyncTag > kHeartbeatTag,
              "sync rounds must not run on the heartbeat channel");
static_assert(ChannelTagBase(kSyncTag, 0) > kHeartbeatTag &&
                  ChannelTagBase(kUnitTagBase, 0) > kHeartbeatTag,
              "channel tags must never collide with the heartbeat channel");
static_assert(kUnitTagBase > kSyncTag + kTagsPerCollective,
              "unit channels must not overlap the sync namespace");

}  // namespace aiacc::collective
