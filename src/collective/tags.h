// Shared tag-namespace layout for every component that multiplexes logical
// channels over one Transport. Tags are the threaded analogue of CUDA
// streams: two operations may overlap in time iff their tag namespaces are
// disjoint. This header is the single source of truth for how the namespace
// is carved up — the collectives, the threaded engine, and the Perseus-style
// session API all derive their tags from these constants, so a collision
// (e.g. a multi-channel ring landing on the heartbeat channel) is a
// compile-time error below, not a runtime hang.
#pragma once

#include <cstdint>

namespace aiacc::collective {

/// Reserved heartbeat channel (core/threaded_engine.cpp HeartbeatLoop).
/// Heartbeats use datagram-style TryRecv; nothing else may ever send on
/// this tag, or a strict receiver would steal/corrupt the beat stream.
inline constexpr int kHeartbeatTag = 0;

/// The engine's gradient-synchronization bit-vector rounds (a min
/// all-reduce per round) run on this namespace.
inline constexpr int kSyncTag = 1;

/// Upper bound on consecutive tags a single collective call consumes from
/// its tag_base: hierarchical all-reduce is the widest (intra-host ring,
/// leader ring, intra-host broadcast = 3).
inline constexpr int kTagsPerCollective = 3;

/// Stride between the per-channel namespaces of a multi-channel collective,
/// and the unit callers must advance their own tag cursor by per channel.
/// Wider than kTagsPerCollective so every channel's rings + rotation passes
/// fit with headroom.
inline constexpr int kChannelTagStride = 16;

/// First tag handed to the engine's all-reduce units; unit u owns
/// [kUnitTagBase + u * kUnitTagStride, +kUnitTagStride).
inline constexpr int kUnitTagBase = 1024;
inline constexpr int kUnitTagStride = 4;

/// Retry namespaces (the in-band-recovery tiers never reuse a dirty tag
/// channel: a failed attempt can leave stale half-ring messages in its
/// mailboxes, and a later collective on the same tags would silently reduce
/// over them — fresh tags per attempt make stale messages unreachable).
///
/// Engine unit retries: when the engine retries all-reduce unit `u` after a
/// failed attempt, the unit's channel moves permanently to epoch e >= 1 at
/// UnitEpochTagBase(u, e). Epochs are per-unit failure counts, so every
/// rank that observes the same (symmetric) failure sequence derives the
/// same tags without extra coordination.
inline constexpr int kUnitRetryTagBase = 1048576;  // 2^20
/// Max retry epochs per unit; a unit failing this often is a tier-3
/// (checkpoint recovery) problem, not a retry problem.
inline constexpr int kUnitRetryEpochs = 32;

/// Channel-health retry rings: when MultiChannelAllReduce re-runs a failed
/// channel's chunk, the retry ring gets a never-before-used namespace at
/// RetryRingTagBase(id) — ids are agreed during the tracker's aggregation
/// round and increase monotonically for the tracker's lifetime.
inline constexpr int kChannelRetryTagBase = 8388608;  // 2^23

/// Channel home-namespace epochs: a multi-channel channel whose ring fails
/// abandons its current namespace for good (the abort strands half-ring
/// wire state there) and all *subsequent* plans place it at
/// ChannelEpochTagBase(channel, e) with e = its agreed failure count.
/// Epochs are deterministic per channel — unlike the one-shot retry-ring
/// ids — so fault models that follow a physical channel (a bad NIC queue)
/// can cover a channel's tags across every epoch it may occupy.
inline constexpr int kChannelEpochTagBase = 16777216;  // 2^24
/// Channel count ceiling for the epoch layout (epoch-major blocks).
inline constexpr int kMaxTrackedChannels = 64;

[[nodiscard]] constexpr int UnitEpochTagBase(std::uint64_t unit_id,
                                             int epoch) noexcept {
  return epoch == 0
             ? kUnitTagBase + static_cast<int>(unit_id) * kUnitTagStride
             : kUnitRetryTagBase +
                   (static_cast<int>(unit_id) * kUnitRetryEpochs +
                    (epoch - 1)) *
                       kUnitTagStride;
}

[[nodiscard]] constexpr int RetryRingTagBase(std::uint64_t retry_id) noexcept {
  return kChannelRetryTagBase +
         static_cast<int>(retry_id) * kUnitTagStride;
}

/// Home namespace of channel `channel` at failure epoch `epoch` (>= 1;
/// epoch 0 is the channel's ChannelTagBase home inside its caller's
/// namespace).
[[nodiscard]] constexpr int ChannelEpochTagBase(int channel,
                                                int epoch) noexcept {
  return kChannelEpochTagBase +
         ((epoch - 1) * kMaxTrackedChannels + channel) * kChannelTagStride;
}

/// Tag base of channel `channel` (0-based) inside a multi-channel
/// collective whose own base is `base`. Channels start one stride above
/// `base` so even channel 0 is disjoint from the caller's single-ring
/// namespace (the fallback path uses `base` directly).
[[nodiscard]] constexpr int ChannelTagBase(int base, int channel) noexcept {
  return base + kChannelTagStride * (channel + 1);
}

static_assert(kChannelTagStride > kTagsPerCollective,
              "a channel's rings would spill into the next channel's tags");
static_assert(kUnitTagStride > kTagsPerCollective,
              "a unit's collective would spill into the next unit's tags");
static_assert(kSyncTag > kHeartbeatTag,
              "sync rounds must not run on the heartbeat channel");
static_assert(ChannelTagBase(kSyncTag, 0) > kHeartbeatTag &&
                  ChannelTagBase(kUnitTagBase, 0) > kHeartbeatTag,
              "channel tags must never collide with the heartbeat channel");
static_assert(kUnitTagBase > kSyncTag + kTagsPerCollective,
              "unit channels must not overlap the sync namespace");
static_assert(kUnitRetryTagBase > kUnitTagBase,
              "unit retry epochs must sit above the primary unit namespace");
static_assert(kChannelRetryTagBase > kUnitRetryTagBase,
              "channel retry rings must sit above the unit retry namespace");
static_assert(UnitEpochTagBase(0, 1) == kUnitRetryTagBase &&
                  UnitEpochTagBase(0, 0) == kUnitTagBase,
              "epoch 0 is the unit's primary namespace; epoch 1 the first "
              "retry namespace");
static_assert(kChannelEpochTagBase > kChannelRetryTagBase,
              "channel epoch homes must sit above the retry-ring namespace");
static_assert(ChannelEpochTagBase(0, 1) == kChannelEpochTagBase,
              "epoch 1 is the first relocated channel home");

}  // namespace aiacc::collective
