// Functional collective algorithms over the real in-process transport.
// One caller thread per rank (SPMD style, like an MPI program). These verify
// the *algorithms* — chunked ring all-reduce, hierarchical all-reduce,
// reduce-scatter/all-gather/broadcast, and the multi-channel variant where a
// rank participates in several concurrent rings (the paper's core idea) —
// with real numerics and real concurrency.
//
// Every operation returns Status: Ok when the collective completed on this
// rank, kDeadlineExceeded when a peer message missed the Comm's deadline
// (crashed peer, dropped message), or kUnavailable when the transport was
// shut down mid-algorithm. On a non-OK return the caller's buffer contents
// are unspecified, but the call itself never hangs (given a deadline) and
// never crashes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "collective/ops.h"
#include "collective/tags.h"
#include "common/buffer_pool.h"
#include "common/status.h"
#include "compress/codec.h"
#include "transport/inproc.h"

namespace aiacc::collective {

/// Upper bound on Comm::pipeline_depth. Keeps the per-ring slice window on
/// the stack (no per-call allocation for the recycled-buffer carry array)
/// and bounds the number of in-flight messages per tag channel.
inline constexpr int kMaxPipelineDepth = 8;

struct Comm {
  transport::Transport* transport = nullptr;
  int rank = 0;
  int world_size = 1;
  /// Tag namespace base; collectives use tags [tag_base, tag_base + steps).
  int tag_base = 0;
  /// Per-message receive deadline in milliseconds; <= 0 blocks forever
  /// (the pre-fault-tolerance behaviour).
  std::int64_t timeout_ms = 0;
  /// Payload-buffer recycler for the hot path (see common/buffer_pool.h).
  /// nullptr selects the legacy allocate-and-copy path — kept selectable so
  /// tests can prove the pooled path bit-identical and benches can measure
  /// the allocation cost it removes.
  common::BufferPool* pool = &common::BufferPool::Global();
  /// Ring pipeline depth: each per-step ring chunk is split into this many
  /// slices kept concurrently in flight on the same tag channel, so the
  /// reduce of slice k overlaps the recv-wait of slice k+1 (and all-gather
  /// forwards slices as they land). Results are bit-identical at every
  /// depth — slicing never changes which chunk an element reduces in, only
  /// how much of a step is in flight at once. Values are clamped to
  /// [1, kMaxPipelineDepth], and each ring further clamps its *effective*
  /// depth to its chunk size so a slice is never empty; depth 1 is exactly
  /// the unpipelined schedule.
  int pipeline_depth = 1;
  /// Wire codec for the all-reduce family (src/compress/codec.h). Cast
  /// codecs (fp16/bf16) fuse into the sliced ring phases — every hop ships
  /// packed 16-bit lanes, the receiver decodes into pooled scratch, reduces,
  /// and re-encodes, so the encode of slice k overlaps the recv of slice
  /// k+1 exactly like the uncompressed pipeline. Sparse codecs (1-bit,
  /// top-k) reroute RingAllReduce/HierarchicalAllReduce through
  /// CompressedAllReduce. kNone (the default) is the raw-fp32 wire.
  /// Constraints: a codec must never carry ReduceOp::kBitAnd traffic (the
  /// bit-packed sync rounds are exact agreements), and standalone
  /// ReduceScatter/AllGather/point-to-point ops always ship raw fp32.
  compress::CodecSpec codec{};
  /// Cooperative slice-yield hook. When set, the pipelined ring phases
  /// invoke it between slice iterations so a long bulk transfer can give
  /// up transport bandwidth to a newly-ready urgent unit on another stream
  /// (the engine parks this thread briefly when the ready set holds a more
  /// urgent unit). Timing-only: the yield never changes which slice any
  /// element reduces in, so results stay bit-identical with or without it.
  void (*slice_yield)(void* ctx) = nullptr;
  void* slice_yield_ctx = nullptr;
};

/// Classic chunked ring all-reduce: reduce-scatter then all-gather, 2(n-1)
/// point-to-point steps per rank. In-place on `data`; every rank must pass
/// equally-sized buffers. Blocking; call from all ranks concurrently.
Status RingAllReduce(const Comm& comm, std::span<float> data, ReduceOp op);

/// Sparse-codec all-reduce (comm.codec must be kOneBit or kTopK; op kSum or
/// kAvg): every rank encodes its gradient once, the n variable-length
/// compressed records circulate around the ring (an all-gather of records),
/// and every rank decode-accumulates them in rank order 0..n-1 — the same
/// float-add order everywhere, so replicas are bit-identical. `residual` is
/// the per-tensor error-feedback accumulator (same length as `data`, or
/// empty to disable EF): the previous step's quantization error is folded
/// into `data` before encoding and the new error
/// (compensated - decode(own record)) is written back — locally, with no
/// extra wire traffic. Wire cost per rank: n-1 sends of ~MaxWireFloats
/// instead of 2(n-1) chunk payloads, a >10x byte cut at 1% top-k density.
Status CompressedAllReduce(const Comm& comm, std::span<float> data,
                           ReduceOp op, std::span<float> residual);

/// Hierarchical all-reduce: ring within each host group of `gpus_per_host`
/// consecutive ranks, ring across group leaders, broadcast within groups
/// (the paper's "tree all-reduce", §V-B).
Status HierarchicalAllReduce(const Comm& comm, int gpus_per_host,
                             std::span<float> data, ReduceOp op);

/// Reduce-scatter: after the call, rank r holds the reduction of chunk r in
/// data[chunk_begin(r) .. chunk_end(r)); other regions are scratch.
Status ReduceScatter(const Comm& comm, std::span<float> data, ReduceOp op);

/// All-gather assuming rank r holds valid chunk r (the state ReduceScatter
/// leaves behind); fills every chunk on every rank.
Status AllGather(const Comm& comm, std::span<float> data);

/// Broadcast from `root` (ring pipeline).
Status Broadcast(const Comm& comm, int root, std::span<float> data);

/// Reduce to `root` only: after the call root holds op(all ranks' data);
/// other ranks' buffers are unchanged. (Chain reduction along the ring —
/// the building block of parameter-server push aggregation.)
Status Reduce(const Comm& comm, int root, std::span<float> data, ReduceOp op);

/// Gather: root receives every rank's `contribution` into `gathered`
/// (world_size * contribution.size(), rank-major). Non-root ranks may pass
/// an empty `gathered`. The root drains peers in *completion order* (a
/// TryRecv sweep with a short blocking fallback), so one slow rank no
/// longer serializes the ranks behind it in the fixed rank-order scan.
/// Caveat: the sweep uses TryRecv, which a FaultyTransport relaxes to
/// datagram semantics — do not run Gather over a *lossy* decorated channel
/// (lossless fault specs are fine; transport/faulty.h explains the mix).
Status Gather(const Comm& comm, int root, std::span<const float> contribution,
              std::span<float> gathered);

/// Scatter: root distributes `scattered` (world_size * chunk.size(),
/// rank-major) so each rank receives its chunk. Non-root ranks may pass an
/// empty `scattered`.
Status Scatter(const Comm& comm, int root, std::span<const float> scattered,
               std::span<float> chunk);

/// All-to-all personalized exchange: `send` and `recv` are world_size
/// equal-sized blocks; block d of `send` goes to rank d, and block s of
/// `recv` comes from rank s. (The exchange pattern of sparse/embedding
/// workloads the paper's Discussion section points at.)
Status AllToAll(const Comm& comm, std::span<const float> send,
                std::span<float> recv);

/// Multi-channel all-reduce: slices `data` into `num_channels` contiguous
/// pieces and runs an independent ring per slice on its own tag namespace
/// (ChannelTagBase) — a rank participates in `num_channels` all-reduce
/// operations simultaneously, the threaded analogue of AIACC's
/// multi-streamed communication. Channel 0 runs on the calling thread; the
/// rest run on a persistent process-wide worker pool that grows to peak
/// demand and is reused across invocations (no thread is ever spawned per
/// call). Returns the first non-OK channel status.
Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels);

class ChannelHealthTracker;

/// Health-tracked variant (tier 2 of the fault story — see
/// collective/channel_health.h): the active channel set comes from the
/// tracker's agreed plan (quarantined channels are excluded and their chunk
/// ranges rebalance onto the survivors), per-channel outcomes feed the
/// tracker's hysteresis scoring, and a channel that failed on any rank this
/// invocation is retried in-call — every rank restores the failed chunk
/// range from a pre-call snapshot and re-runs it as a single degraded
/// (depth-1) ring on a fresh, never-reused retry tag namespace, so a stale
/// half-ring message from the failed attempt can never be mistaken for
/// retry traffic. All ranks must share `health` (like the transport) and
/// call with the same num_channels; one tracker serves one logical sequence
/// of collectives (concurrent collectives need separate trackers).
/// `health == nullptr` is exactly the plain overload.
Status MultiChannelAllReduce(const Comm& comm, std::span<float> data,
                             ReduceOp op, int num_channels,
                             ChannelHealthTracker* health);

/// Current size of the persistent multi-channel worker pool (0 until the
/// first multi-channel call). Exposed so tests can assert that repeated
/// invocations reuse workers instead of spawning threads per call.
int MultiChannelWorkerCount();

/// Chunk boundaries used by ring collectives (also exposed for tests):
/// chunk c of n covers [ChunkBegin(len,n,c), ChunkBegin(len,n,c+1)).
std::size_t ChunkBegin(std::size_t len, int n_chunks, int chunk);

}  // namespace aiacc::collective
