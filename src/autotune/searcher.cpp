#include "autotune/searcher.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace aiacc::autotune {

// ---------------------------------------------------------------- Grid ----

GridSearcher::GridSearcher(core::CommConfigSpace space)
    : Searcher(std::move(space)) {
  const std::size_t n = space_.NumPoints();
  // Stratified order: walk the flat index space with a golden-ratio stride
  // (made co-prime with n), so the first few proposals span every axis of
  // the grid instead of crawling one axis.
  std::size_t stride = static_cast<std::size_t>(0.6180339887 * n) | 1;
  while (std::gcd(stride, n) != 1) stride += 2;
  order_.reserve(n);
  std::size_t at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    order_.push_back(at);
    at = (at + stride) % n;
  }
}

core::CommConfig GridSearcher::Propose(Rng& rng) {
  (void)rng;
  const core::CommConfig cfg = space_.ConfigAt(order_[next_ % order_.size()]);
  ++next_;
  return cfg;
}

void GridSearcher::Observe(const Observation& obs) { (void)obs; }

// ----------------------------------------------------------------- PBT ----

PbtSearcher::PbtSearcher(core::CommConfigSpace space, int population)
    : Searcher(std::move(space)), population_size_(population) {
  AIACC_CHECK(population >= 2);
}

core::CommConfig PbtSearcher::Perturb(const core::CommConfig& base,
                                      Rng& rng) const {
  core::CommConfig out = base;
  // Perturb one axis to a neighbouring grid value.
  auto nudge = [&rng](auto& value, const auto& options) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i] == value) idx = i;
    }
    const std::int64_t dir = rng.Chance(0.5) ? 1 : -1;
    const auto n = static_cast<std::int64_t>(options.size());
    const std::int64_t next = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(idx) + dir, 0, n - 1);
    value = options[static_cast<std::size_t>(next)];
  };
  switch (rng.UniformInt(0, 6)) {
    case 0: nudge(out.num_streams, space_.stream_options); break;
    case 1: nudge(out.granularity_bytes, space_.granularity_options); break;
    case 2: nudge(out.pipeline_depth, space_.pipeline_depth_options); break;
    case 3: nudge(out.codec, space_.codec_options); break;
    case 4:
      nudge(out.priority_urgent_fraction, space_.priority_urgent_options);
      break;
    case 5: nudge(out.priority_aging_ms, space_.priority_aging_options); break;
    default:
      out.algorithm = out.algorithm == collective::Algorithm::kRing
                          ? collective::Algorithm::kHierarchical
                          : collective::Algorithm::kRing;
  }
  out.min_bucket_bytes =
      std::min<std::size_t>(out.granularity_bytes, 1u << 20);
  return out;
}

core::CommConfig PbtSearcher::Propose(Rng& rng) {
  if (!initialized_) {
    population_.clear();
    for (int i = 0; i < population_size_; ++i) {
      Member m;
      m.config = space_.ConfigAt(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(space_.NumPoints()) - 1)));
      population_.push_back(m);
    }
    initialized_ = true;
  }
  // Evaluate any member that has no score yet.
  for (std::size_t i = 0; i < population_.size(); ++i) {
    if (!population_[i].evaluated) {
      pending_ = i;
      return population_[i].config;
    }
  }
  // Exploit + explore: clone a top-quartile member, perturb it, and replace
  // the worst member.
  std::vector<std::size_t> idx(population_.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return population_[a].score > population_[b].score;
  });
  const std::size_t top =
      idx[static_cast<std::size_t>(rng.UniformInt(
          0, std::max<std::int64_t>(0, population_size_ / 4 - 1)))];
  const std::size_t worst = idx.back();
  population_[worst].config = Perturb(population_[top].config, rng);
  population_[worst].evaluated = false;
  pending_ = worst;
  return population_[worst].config;
}

void PbtSearcher::Observe(const Observation& obs) {
  if (!initialized_ || pending_ >= population_.size()) return;
  population_[pending_].score = obs.score;
  population_[pending_].evaluated = true;
}

// --------------------------------------------------------------- Bayes ----

BayesSearcher::BayesSearcher(core::CommConfigSpace space)
    : Searcher(std::move(space)) {}

std::vector<double> BayesSearcher::Encode(const core::CommConfig& c) const {
  // Normalize to [0,1]^7: log2(streams)/5, position of granularity on its
  // log scale, algorithm as a binary coordinate, log2(pipeline depth)/3,
  // the codec's position in the option list (ordinal — neighbours in the
  // list are the most similar wire formats), and the two scheduler axes as
  // ordinal positions in their option lists.
  const double s = std::log2(static_cast<double>(c.num_streams)) / 5.0;
  const double lo =
      std::log2(static_cast<double>(space_.granularity_options.front()));
  const double hi =
      std::log2(static_cast<double>(space_.granularity_options.back()));
  const double g =
      (std::log2(static_cast<double>(c.granularity_bytes)) - lo) /
      std::max(1.0, hi - lo);
  const double a = c.algorithm == collective::Algorithm::kRing ? 0.0 : 1.0;
  const double p = std::log2(static_cast<double>(c.pipeline_depth)) / 3.0;
  double codec_pos = 0.0;
  for (std::size_t i = 0; i < space_.codec_options.size(); ++i) {
    if (space_.codec_options[i] == c.codec) {
      codec_pos = static_cast<double>(i) /
                  std::max<double>(1.0, space_.codec_options.size() - 1.0);
      break;
    }
  }
  const auto ordinal = [](const auto& options, const auto& value) {
    double pos = 0.0;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i] == value) {
        pos = static_cast<double>(i) /
              std::max<double>(1.0, options.size() - 1.0);
        break;
      }
    }
    return pos;
  };
  const double urgent =
      ordinal(space_.priority_urgent_options, c.priority_urgent_fraction);
  const double aging = ordinal(space_.priority_aging_options, c.priority_aging_ms);
  return {s, g, a, p, codec_pos, urgent, aging};
}

namespace {

double RbfKernel(const std::vector<double>& a, const std::vector<double>& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  constexpr double kLengthScale = 0.35;
  return std::exp(-d2 / (2.0 * kLengthScale * kLengthScale));
}

/// Solve (K + noise I) alpha = y by Gaussian elimination (n is tiny).
std::vector<double> SolveLinear(std::vector<std::vector<double>> a,
                                std::vector<double> y) {
  const std::size_t n = y.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(y[col], y[pivot]);
    const double diag = a[col][col];
    AIACC_CHECK(std::fabs(diag) > 1e-12);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / diag;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      y[r] -= f * y[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t r = n; r-- > 0;) {
    double sum = y[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= a[r][c] * x[c];
    x[r] = sum / a[r][r];
  }
  return x;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

}  // namespace

core::CommConfig BayesSearcher::Propose(Rng& rng) {
  if (xs_.size() < 3) {
    // Bootstrap with random samples.
    return space_.ConfigAt(static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(space_.NumPoints()) - 1)));
  }
  // Fit the GP: alpha = (K + sigma^2 I)^-1 y on standardized scores.
  const std::size_t n = xs_.size();
  double mean = 0.0;
  for (double y : ys_) mean += y;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double y : ys_) var += (y - mean) * (y - mean);
  var = std::max(var / static_cast<double>(n), 1e-12);
  const double stddev = std::sqrt(var);

  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  std::vector<double> y_std(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) k[i][j] = RbfKernel(xs_[i], xs_[j]);
    k[i][i] += 1e-3;  // observation noise
    y_std[i] = (ys_[i] - mean) / stddev;
  }
  const std::vector<double> alpha = SolveLinear(k, y_std);

  double best_y = *std::max_element(y_std.begin(), y_std.end());
  double best_ei = -1.0;
  core::CommConfig best_cfg = space_.ConfigAt(0);
  for (std::size_t p = 0; p < space_.NumPoints(); ++p) {
    const core::CommConfig cfg = space_.ConfigAt(p);
    const std::vector<double> x = Encode(cfg);
    double mu = 0.0;
    double k_self = RbfKernel(x, x);
    // Approximate predictive variance via the Nystrom-style bound
    // k(x,x) - sum_i k(x,xi)^2 / (k(xi,xi)+noise) (cheap, monotone in the
    // true variance — adequate for an acquisition argmax on a small grid).
    double var_red = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ki = RbfKernel(x, xs_[i]);
      mu += ki * alpha[i];
      var_red += ki * ki / (1.0 + 1e-3);
    }
    const double sigma = std::sqrt(
        std::max(1e-9, k_self - var_red / static_cast<double>(n)));
    const double z = (mu - best_y) / sigma;
    const double ei = (mu - best_y) * NormalCdf(z) + sigma * NormalPdf(z);
    if (ei > best_ei) {
      best_ei = ei;
      best_cfg = cfg;
    }
  }
  return best_cfg;
}

void BayesSearcher::Observe(const Observation& obs) {
  xs_.push_back(Encode(obs.config));
  ys_.push_back(obs.score);
}

// ----------------------------------------------------------- Hyperband ----

HyperbandSearcher::HyperbandSearcher(core::CommConfigSpace space,
                                     int rung_size, int eta)
    : Searcher(std::move(space)), rung_size_(rung_size), eta_(eta) {
  AIACC_CHECK(rung_size >= eta && eta >= 2);
}

void HyperbandSearcher::StartBracket(Rng& rng) {
  rung_.clear();
  for (int i = 0; i < rung_size_; ++i) {
    Candidate c;
    c.config = space_.ConfigAt(static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(space_.NumPoints()) - 1)));
    rung_.push_back(c);
  }
  next_in_rung_ = 0;
  bracket_active_ = true;
}

core::CommConfig HyperbandSearcher::Propose(Rng& rng) {
  if (!bracket_active_) StartBracket(rng);
  if (next_in_rung_ >= rung_.size()) {
    // Rung complete: promote the top 1/eta; a rung of one ends the bracket.
    std::sort(rung_.begin(), rung_.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.Mean() > b.Mean();
              });
    const std::size_t keep =
        std::max<std::size_t>(1, rung_.size() / static_cast<std::size_t>(eta_));
    if (keep == rung_.size() || keep <= 1) {
      StartBracket(rng);
    } else {
      rung_.resize(keep);
      next_in_rung_ = 0;
    }
  }
  return rung_[next_in_rung_].config;
}

void HyperbandSearcher::Observe(const Observation& obs) {
  if (!bracket_active_ || next_in_rung_ >= rung_.size()) return;
  rung_[next_in_rung_].score_sum += obs.score;
  rung_[next_in_rung_].evals += 1;
  ++next_in_rung_;
}

// -------------------------------------------------------------- Random ----

core::CommConfig RandomSearcher::Propose(Rng& rng) {
  return space_.ConfigAt(static_cast<std::size_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(space_.NumPoints()) - 1)));
}

// ----------------------------------------------------------- Annealing ----

AnnealingSearcher::AnnealingSearcher(core::CommConfigSpace space,
                                     double initial_temp, double cooling)
    : Searcher(std::move(space)),
      temperature_(initial_temp),
      cooling_(cooling) {
  AIACC_CHECK(initial_temp > 0.0 && cooling > 0.0 && cooling < 1.0);
}

core::CommConfig AnnealingSearcher::Neighbour(const core::CommConfig& base,
                                              Rng& rng) const {
  core::CommConfig out = base;
  auto step = [&rng](auto& value, const auto& options) {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < options.size(); ++i) {
      if (options[i] == value) idx = i;
    }
    const std::int64_t dir = rng.Chance(0.5) ? 1 : -1;
    const auto n = static_cast<std::int64_t>(options.size());
    const std::int64_t to = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(idx) + dir, 0, n - 1);
    value = options[static_cast<std::size_t>(to)];
  };
  switch (rng.UniformInt(0, 6)) {
    case 0: step(out.num_streams, space_.stream_options); break;
    case 1: step(out.granularity_bytes, space_.granularity_options); break;
    case 2: step(out.pipeline_depth, space_.pipeline_depth_options); break;
    case 3: step(out.codec, space_.codec_options); break;
    case 4:
      step(out.priority_urgent_fraction, space_.priority_urgent_options);
      break;
    case 5: step(out.priority_aging_ms, space_.priority_aging_options); break;
    default:
      out.algorithm = out.algorithm == collective::Algorithm::kRing
                          ? collective::Algorithm::kHierarchical
                          : collective::Algorithm::kRing;
  }
  out.min_bucket_bytes = std::min<std::size_t>(out.granularity_bytes, 1u << 20);
  return out;
}

core::CommConfig AnnealingSearcher::Propose(Rng& rng) {
  if (!has_current_) {
    proposed_ = space_.ConfigAt(static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(space_.NumPoints()) - 1)));
  } else {
    proposed_ = Neighbour(current_, rng);
  }
  return proposed_;
}

void AnnealingSearcher::Observe(const Observation& obs) {
  // Metropolis acceptance on the (normalized) score difference. Scores are
  // throughputs, so normalize by the incumbent to keep the temperature
  // scale meaningful across workloads.
  if (!has_current_ || obs.score >= current_score_) {
    current_ = obs.config;
    current_score_ = obs.score;
    has_current_ = true;
  } else if (current_score_ > 0.0) {
    const double delta = (current_score_ - obs.score) / current_score_;
    // Deterministic threshold (the meta-solver already injects exploration);
    // accept when the relative loss is under the temperature.
    if (delta < temperature_ * 0.1) {
      current_ = obs.config;
      current_score_ = obs.score;
    }
  }
  temperature_ *= cooling_;
}

// -------------------------------------------------------------- Factory ----

std::vector<std::unique_ptr<Searcher>> MakeDefaultEnsemble(
    const core::CommConfigSpace& space) {
  std::vector<std::unique_ptr<Searcher>> out;
  out.push_back(std::make_unique<GridSearcher>(space));
  out.push_back(std::make_unique<PbtSearcher>(space));
  out.push_back(std::make_unique<BayesSearcher>(space));
  out.push_back(std::make_unique<HyperbandSearcher>(space));
  return out;
}

std::vector<std::unique_ptr<Searcher>> MakeExtendedEnsemble(
    const core::CommConfigSpace& space) {
  auto out = MakeDefaultEnsemble(space);
  out.push_back(std::make_unique<RandomSearcher>(space));
  out.push_back(std::make_unique<AnnealingSearcher>(space));
  return out;
}

}  // namespace aiacc::autotune
