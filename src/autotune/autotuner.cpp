#include "autotune/autotuner.h"

#include "common/logging.h"

namespace aiacc::autotune {

AutotuneResult Tune(const Objective& objective, AutotuneOptions options) {
  AutotuneResult result;
  MetaSolver solver(MakeDefaultEnsemble(options.space), options.solver);
  for (int i = 0; i < solver.NumSearchers(); ++i) {
    result.searcher_names.push_back(solver.SearcherName(i));
  }

  int step_no = 0;

  // Seed from the tuning cache when a similar deployment is known.
  if (options.cache != nullptr) {
    AIACC_CHECK(options.model != nullptr && options.topology.has_value());
    if (auto seed =
            options.cache->LookupSimilar(*options.model, *options.topology)) {
      const double score = objective(*seed);
      result.history.push_back(
          TuneRecord{step_no++, "cache-seed", *seed, score, true});
      result.best_config = *seed;
      result.best_score = score;
      result.seeded_from_cache = true;
    }
  }

  while (auto step = solver.NextStep()) {
    const double score = objective(step->config);
    solver.Report(*step, score);
    const bool new_best = result.history.empty() || score > result.best_score;
    if (new_best) {
      result.best_score = score;
      result.best_config = step->config;
    }
    result.history.push_back(TuneRecord{step_no++,
                                        solver.SearcherName(step->searcher_index),
                                        step->config, score, new_best});
  }
  result.searcher_usage = solver.UsageCounts();

  if (options.cache != nullptr) {
    options.cache->Store(*options.model, *options.topology,
                         result.best_config, result.best_score);
  }
  return result;
}

}  // namespace aiacc::autotune
