#include "autotune/autotuner.h"

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace aiacc::autotune {

AutotuneResult Tune(const Objective& objective, AutotuneOptions options) {
  AIACC_TRACE_SPAN("autotune", "tune");
  auto& metrics = telemetry::MetricsRegistry::Global();
  telemetry::Counter& steps = metrics.GetCounter("autotune.steps");
  telemetry::Gauge& best_gauge = metrics.GetGauge("autotune.best_score");
  // Objective scores are throughput-like and unbounded; a wide exponential
  // grid keeps the histogram useful whatever the unit is.
  telemetry::Histogram& reward = metrics.GetHistogram(
      "autotune.reward", telemetry::ExponentialBounds(1e-3, 24));

  AutotuneResult result;
  MetaSolver solver(MakeDefaultEnsemble(options.space), options.solver);
  for (int i = 0; i < solver.NumSearchers(); ++i) {
    result.searcher_names.push_back(solver.SearcherName(i));
  }

  int step_no = 0;

  // Evaluate one config, penalizing flakiness: the raw reward is divided by
  // (1 + penalty * fault_events), where fault_events is the configured
  // fault-pressure probe's delta across the evaluation. A config that hit
  // its throughput only by leaning on retransmits/retries reports a lower
  // effective reward, so the solver steers toward configs that run clean.
  auto evaluate = [&](const core::CommConfig& config,
                      std::uint64_t* fault_events) {
    const std::uint64_t before =
        options.fault_pressure ? options.fault_pressure() : 0;
    double score = objective(config);
    const std::uint64_t delta =
        options.fault_pressure ? options.fault_pressure() - before : 0;
    *fault_events = delta;
    if (delta > 0 && options.flakiness_penalty > 0.0) {
      score /= 1.0 + options.flakiness_penalty * static_cast<double>(delta);
    }
    return score;
  };

  // Seed from the tuning cache when a similar deployment is known.
  if (options.cache != nullptr) {
    AIACC_CHECK(options.model != nullptr && options.topology.has_value());
    if (auto seed =
            options.cache->LookupSimilar(*options.model, *options.topology)) {
      AIACC_TRACE_INSTANT("autotune", "cache-seed");
      std::uint64_t fault_events = 0;
      const double score = evaluate(*seed, &fault_events);
      result.history.push_back(
          TuneRecord{step_no++, "cache-seed", *seed, score, true,
                     fault_events});
      result.best_config = *seed;
      result.best_score = score;
      result.seeded_from_cache = true;
      steps.Add();
      reward.Record(score);
      best_gauge.Set(score);
    }
  }

  while (auto step = solver.NextStep()) {
    const std::string& searcher = solver.SearcherName(step->searcher_index);
    double score = 0.0;
    std::uint64_t fault_events = 0;
    {
      AIACC_TRACE_SPAN_IDX("autotune.step", "step", step->searcher_index);
      score = evaluate(step->config, &fault_events);
    }
    solver.Report(*step, score);
    steps.Add();
    metrics.GetCounter(telemetry::Scoped("autotune.decisions", searcher))
        .Add();
    reward.Record(score);
    const bool new_best = result.history.empty() || score > result.best_score;
    if (new_best) {
      result.best_score = score;
      result.best_config = step->config;
      best_gauge.Set(score);
      AIACC_TRACE_INSTANT("autotune", "new-best");
    }
    result.history.push_back(TuneRecord{step_no++, searcher, step->config,
                                        score, new_best, fault_events});
  }
  result.searcher_usage = solver.UsageCounts();

  if (options.cache != nullptr) {
    options.cache->Store(*options.model, *options.topology,
                         result.best_config, result.best_score);
  }
  return result;
}

}  // namespace aiacc::autotune
