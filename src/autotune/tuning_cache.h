// Cross-deployment tuning cache (paper §VI): AIACC stores the best parameter
// setting found for a (DNN computation graph, cloud instance, network
// topology) and seeds the search for *similar* deployments with it.
// Similarity combines a graph edit distance over the model's layer graph
// with a topology distance (host/GPU counts, transport).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/config.h"
#include "dnn/model.h"
#include "net/topology.h"

namespace aiacc::autotune {

/// Normalized edit distance between two layer graphs in [0, 1]:
/// insert/delete cost 1 per node, substitution cost by kind mismatch and
/// parameter-size ratio. (The models' computation graphs are chains, so the
/// general GED reduces to sequence edit distance — computed exactly.)
double GraphDistance(const std::vector<dnn::ModelDescriptor::GraphNode>& a,
                     const std::vector<dnn::ModelDescriptor::GraphNode>& b);

/// Topology distance in [0, 1]: transport mismatch dominates, then relative
/// differences in host count and GPUs per host.
double TopologyDistance(const net::Topology& a, const net::Topology& b);

class TuningCache {
 public:
  struct Entry {
    std::string model_name;
    std::vector<dnn::ModelDescriptor::GraphNode> graph;
    net::Topology topology;
    core::CommConfig config;
    double score = 0.0;
  };

  /// Record the tuned configuration for a deployment (replaces an existing
  /// entry for the identical model/topology pair when the score improves).
  void Store(const dnn::ModelDescriptor& model, const net::Topology& topology,
             const core::CommConfig& config, double score);

  /// Best-matching previous deployment within `max_distance` (combined
  /// graph+topology distance); nullopt when nothing is close enough.
  [[nodiscard]] std::optional<core::CommConfig> LookupSimilar(
      const dnn::ModelDescriptor& model, const net::Topology& topology,
      double max_distance = 0.45) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Persistence (§VI: the cloud service "stores the previously-found best
  /// parameter setting" across deployments). Versioned binary format with a
  /// checksum; Load replaces the current contents.
  [[nodiscard]] std::vector<std::uint8_t> Serialize() const;
  ::aiacc::Status Deserialize(const std::vector<std::uint8_t>& bytes);
  ::aiacc::Status SaveTo(const std::string& path) const;
  ::aiacc::Status LoadFrom(const std::string& path);

 private:
  std::vector<Entry> entries_;
};

}  // namespace aiacc::autotune
