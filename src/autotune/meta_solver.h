// The MAB meta-solver (paper §VI): allocates the warm-up tuning budget among
// the search techniques. Arm selection maximizes
//
//     AUC_t + C * sqrt(2 * lg|H| / H_t)
//
// where AUC_t is a sliding-window area-under-curve credit (the curve steps
// up whenever technique t delivered a new global best and stays flat
// otherwise), H is the sliding history window, H_t how often t was used in
// it, and C the exploration constant (0.2 by default, as in the paper).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autotune/searcher.h"

namespace aiacc::autotune {

struct MetaSolverParams {
  /// Warm-up budget in training iterations (paper default n = 100).
  int budget = 100;
  /// Sliding window length |H|.
  int window = 50;
  /// Exploration constant C.
  double exploration = 0.2;
  std::uint64_t seed = 42;
};

class MetaSolver {
 public:
  MetaSolver(std::vector<std::unique_ptr<Searcher>> searchers,
             MetaSolverParams params = {});

  struct Step {
    int searcher_index = 0;
    core::CommConfig config;
  };

  /// Pick a searcher (bandit arm) and obtain its proposal. Returns nullopt
  /// once the budget is exhausted.
  std::optional<Step> NextStep();

  /// Report the measured throughput for the last NextStep(). Updates the
  /// proposing searcher, the global best, and the credit window.
  void Report(const Step& step, double score);

  [[nodiscard]] bool BudgetExhausted() const noexcept {
    return steps_taken_ >= params_.budget;
  }
  [[nodiscard]] const core::CommConfig& BestConfig() const noexcept {
    return best_config_;
  }
  [[nodiscard]] double BestScore() const noexcept { return best_score_; }
  [[nodiscard]] int StepsTaken() const noexcept { return steps_taken_; }

  [[nodiscard]] int NumSearchers() const noexcept {
    return static_cast<int>(searchers_.size());
  }
  [[nodiscard]] std::string SearcherName(int i) const {
    return searchers_[static_cast<std::size_t>(i)]->Name();
  }
  /// Total times each searcher was selected (bench output).
  [[nodiscard]] const std::vector<int>& UsageCounts() const noexcept {
    return usage_;
  }

  /// Sliding-window AUC credit of searcher `t` (exposed for tests).
  [[nodiscard]] double Auc(int t) const;
  /// The full selection priority (AUC + exploration bonus).
  [[nodiscard]] double Priority(int t) const;

 private:
  struct HistoryEntry {
    int searcher;
    bool improved;  // delivered a new global best
  };

  std::vector<std::unique_ptr<Searcher>> searchers_;
  MetaSolverParams params_;
  Rng rng_;
  std::deque<HistoryEntry> history_;
  std::vector<int> usage_;
  int steps_taken_ = 0;
  core::CommConfig best_config_;
  double best_score_ = -1.0;
};

}  // namespace aiacc::autotune
