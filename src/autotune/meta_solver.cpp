#include "autotune/meta_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace aiacc::autotune {

MetaSolver::MetaSolver(std::vector<std::unique_ptr<Searcher>> searchers,
                       MetaSolverParams params)
    : searchers_(std::move(searchers)),
      params_(params),
      rng_(params.seed),
      usage_(searchers_.size(), 0) {
  AIACC_CHECK(!searchers_.empty());
  AIACC_CHECK(params_.budget > 0);
  AIACC_CHECK(params_.window > 0);
}

double MetaSolver::Auc(int t) const {
  // Walk this technique's entries in the window chronologically; the curve
  // rises one unit per new-global-best and stays flat otherwise. The area
  // under that staircase, normalized by its maximum (k*(k+1)/2 for k
  // entries), rewards techniques whose improvements are both frequent and
  // recent-dense.
  double y = 0.0;
  double area = 0.0;
  int k = 0;
  for (const HistoryEntry& e : history_) {
    if (e.searcher != t) continue;
    if (e.improved) y += 1.0;
    area += y;  // trapezoid with unit width; staircase => running height
    ++k;
  }
  if (k == 0) return 0.0;
  const double max_area = static_cast<double>(k) * (k + 1) / 2.0;
  return area / max_area;
}

double MetaSolver::Priority(int t) const {
  int h_t = 0;
  for (const HistoryEntry& e : history_) {
    if (e.searcher == t) ++h_t;
  }
  if (h_t == 0) {
    // Untried arms (within the window) get unbounded exploration priority.
    return std::numeric_limits<double>::infinity();
  }
  const double h = static_cast<double>(
      std::max<std::size_t>(history_.size(), 2));
  return Auc(t) + params_.exploration *
                      std::sqrt(2.0 * std::log2(h) / static_cast<double>(h_t));
}

std::optional<MetaSolver::Step> MetaSolver::NextStep() {
  if (BudgetExhausted()) return std::nullopt;
  int best_arm = 0;
  double best_priority = -std::numeric_limits<double>::infinity();
  for (int t = 0; t < NumSearchers(); ++t) {
    const double p = Priority(t);
    if (p > best_priority) {
      best_priority = p;
      best_arm = t;
    }
  }
  Step step;
  step.searcher_index = best_arm;
  step.config = searchers_[static_cast<std::size_t>(best_arm)]->Propose(rng_);
  return step;
}

void MetaSolver::Report(const Step& step, double score) {
  AIACC_CHECK(step.searcher_index >= 0 && step.searcher_index < NumSearchers());
  searchers_[static_cast<std::size_t>(step.searcher_index)]->Observe(
      Observation{step.config, score});
  const bool improved = score > best_score_;
  if (improved) {
    best_score_ = score;
    best_config_ = step.config;
  }
  history_.push_back(HistoryEntry{step.searcher_index, improved});
  while (history_.size() > static_cast<std::size_t>(params_.window)) {
    history_.pop_front();
  }
  ++usage_[static_cast<std::size_t>(step.searcher_index)];
  ++steps_taken_;
}

}  // namespace aiacc::autotune
