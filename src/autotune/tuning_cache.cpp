#include "autotune/tuning_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace aiacc::autotune {
namespace {

double NodeSubstitutionCost(const dnn::ModelDescriptor::GraphNode& a,
                            const dnn::ModelDescriptor::GraphNode& b) {
  double cost = a.kind == b.kind ? 0.0 : 0.6;
  const double pa = static_cast<double>(std::max<std::int64_t>(a.param_elements, 1));
  const double pb = static_cast<double>(std::max<std::int64_t>(b.param_elements, 1));
  // Log-ratio of parameter sizes, saturating at one decade.
  cost += 0.4 * std::min(1.0, std::fabs(std::log10(pa / pb)));
  return cost;
}

}  // namespace

double GraphDistance(const std::vector<dnn::ModelDescriptor::GraphNode>& a,
                     const std::vector<dnn::ModelDescriptor::GraphNode>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 && m == 0) return 0.0;
  // Levenshtein DP with weighted substitution; two rolling rows.
  std::vector<double> prev(m + 1);
  std::vector<double> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const double sub = prev[j - 1] + NodeSubstitutionCost(a[i - 1], b[j - 1]);
      const double del = prev[j] + 1.0;
      const double ins = curr[j - 1] + 1.0;
      curr[j] = std::min({sub, del, ins});
    }
    std::swap(prev, curr);
  }
  return prev[m] / static_cast<double>(std::max(n, m));
}

double TopologyDistance(const net::Topology& a, const net::Topology& b) {
  double d = 0.0;
  if (a.inter_node != b.inter_node) d += 0.5;
  auto rel = [](int x, int y) {
    const double mx = std::max(x, y);
    return std::fabs(x - y) / std::max(1.0, mx);
  };
  d += 0.3 * rel(a.num_hosts, b.num_hosts);
  d += 0.2 * rel(a.gpus_per_host, b.gpus_per_host);
  return std::min(1.0, d);
}

void TuningCache::Store(const dnn::ModelDescriptor& model,
                        const net::Topology& topology,
                        const core::CommConfig& config, double score) {
  for (Entry& e : entries_) {
    if (e.model_name == model.name() && e.topology == topology) {
      if (score > e.score) {
        e.config = config;
        e.score = score;
      }
      return;
    }
  }
  entries_.push_back(
      Entry{model.name(), model.GraphFingerprint(), topology, config, score});
}

std::optional<core::CommConfig> TuningCache::LookupSimilar(
    const dnn::ModelDescriptor& model, const net::Topology& topology,
    double max_distance) const {
  const auto graph = model.GraphFingerprint();
  double best = max_distance;
  const Entry* best_entry = nullptr;
  for (const Entry& e : entries_) {
    const double d = 0.6 * GraphDistance(graph, e.graph) +
                     0.4 * TopologyDistance(topology, e.topology);
    if (d <= best) {
      best = d;
      best_entry = &e;
    }
  }
  if (best_entry == nullptr) return std::nullopt;
  return best_entry->config;
}

namespace {
constexpr std::uint32_t kCacheMagic = 0xA1ACCCA5;
// Version 2 added CommConfig::pipeline_depth to every entry.
// Version 3 added the wire codec (kind + top-k ratio) and the per-tensor
// codec override list.
// Version 4 added the priority-dispatch axes (urgent fraction + aging).
// The format is append-only per entry, so Deserialize still accepts
// versions 2 and 3: their entries load with the fields their versions
// lacked defaulted to the behavior they were measured under.
constexpr std::uint32_t kCacheVersion = 4;
constexpr std::uint32_t kOldestReadableVersion = 2;
}  // namespace

std::vector<std::uint8_t> TuningCache::Serialize() const {
  ByteWriter w;
  w.WriteU32(kCacheMagic);
  w.WriteU32(kCacheVersion);
  w.WriteU64(entries_.size());
  for (const Entry& e : entries_) {
    w.WriteString(e.model_name);
    w.WriteU64(e.graph.size());
    for (const auto& node : e.graph) {
      w.WriteU8(static_cast<std::uint8_t>(node.kind));
      w.WriteI64(node.param_elements);
    }
    w.WriteI64(e.topology.num_hosts);
    w.WriteI64(e.topology.gpus_per_host);
    w.WriteU8(static_cast<std::uint8_t>(e.topology.inter_node));
    w.WriteI64(e.config.num_streams);
    w.WriteU64(e.config.granularity_bytes);
    w.WriteU8(static_cast<std::uint8_t>(e.config.algorithm));
    w.WriteU64(e.config.min_bucket_bytes);
    w.WriteI64(e.config.pipeline_depth);
    w.WriteU8(static_cast<std::uint8_t>(e.config.codec.kind));
    w.WriteF64(static_cast<double>(e.config.codec.topk_ratio));
    w.WriteU64(e.config.codec_overrides.size());
    for (const auto& [tensor, spec] : e.config.codec_overrides) {
      w.WriteString(tensor);
      w.WriteU8(static_cast<std::uint8_t>(spec.kind));
      w.WriteF64(static_cast<double>(spec.topk_ratio));
    }
    w.WriteF64(static_cast<double>(e.config.priority_urgent_fraction));
    w.WriteI64(e.config.priority_aging_ms);
    w.WriteF64(e.score);
  }
  return std::move(w).Take();
}

Status TuningCache::Deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kCacheMagic) return DataLoss("bad tuning-cache magic");
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  if (*version < kOldestReadableVersion || *version > kCacheVersion) {
    return Unimplemented("unsupported tuning-cache version");
  }
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();

  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    Entry e;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    e.model_name = std::move(*name);
    auto n_nodes = r.ReadU64();
    if (!n_nodes.ok()) return n_nodes.status();
    for (std::uint64_t n = 0; n < *n_nodes; ++n) {
      auto kind = r.ReadU8();
      if (!kind.ok()) return kind.status();
      auto elems = r.ReadI64();
      if (!elems.ok()) return elems.status();
      e.graph.push_back(dnn::ModelDescriptor::GraphNode{
          static_cast<dnn::LayerKind>(*kind), *elems});
    }
    auto hosts = r.ReadI64();
    if (!hosts.ok()) return hosts.status();
    auto gph = r.ReadI64();
    if (!gph.ok()) return gph.status();
    auto transport = r.ReadU8();
    if (!transport.ok()) return transport.status();
    e.topology.num_hosts = static_cast<int>(*hosts);
    e.topology.gpus_per_host = static_cast<int>(*gph);
    e.topology.inter_node = static_cast<net::TransportKind>(*transport);
    auto streams = r.ReadI64();
    if (!streams.ok()) return streams.status();
    auto gran = r.ReadU64();
    if (!gran.ok()) return gran.status();
    auto algo = r.ReadU8();
    if (!algo.ok()) return algo.status();
    auto bucket = r.ReadU64();
    if (!bucket.ok()) return bucket.status();
    auto depth = r.ReadI64();
    if (!depth.ok()) return depth.status();
    e.config.num_streams = static_cast<int>(*streams);
    e.config.granularity_bytes = static_cast<std::size_t>(*gran);
    e.config.algorithm = static_cast<collective::Algorithm>(*algo);
    e.config.min_bucket_bytes = static_cast<std::size_t>(*bucket);
    e.config.pipeline_depth = static_cast<int>(*depth);
    if (*version >= 3) {
      auto codec_kind = r.ReadU8();
      if (!codec_kind.ok()) return codec_kind.status();
      auto codec_ratio = r.ReadF64();
      if (!codec_ratio.ok()) return codec_ratio.status();
      e.config.codec.kind = static_cast<compress::CodecKind>(*codec_kind);
      e.config.codec.topk_ratio = static_cast<float>(*codec_ratio);
      auto n_overrides = r.ReadU64();
      if (!n_overrides.ok()) return n_overrides.status();
      for (std::uint64_t o = 0; o < *n_overrides; ++o) {
        auto tensor = r.ReadString();
        if (!tensor.ok()) return tensor.status();
        auto okind = r.ReadU8();
        if (!okind.ok()) return okind.status();
        auto oratio = r.ReadF64();
        if (!oratio.ok()) return oratio.status();
        e.config.codec_overrides.emplace_back(
            std::move(*tensor),
            compress::CodecSpec{static_cast<compress::CodecKind>(*okind),
                                static_cast<float>(*oratio)});
      }
    } else {
      // Pre-codec entries were measured on the uncompressed wire format.
      e.config.codec = compress::CodecSpec{};
    }
    if (*version >= 4) {
      auto urgent = r.ReadF64();
      if (!urgent.ok()) return urgent.status();
      auto aging = r.ReadI64();
      if (!aging.ok()) return aging.status();
      e.config.priority_urgent_fraction = static_cast<float>(*urgent);
      e.config.priority_aging_ms = static_cast<int>(*aging);
    } else {
      // Pre-scheduler entries were measured under FIFO dispatch; load them
      // with priority dispatch off so their scores keep their meaning.
      e.config.priority_urgent_fraction = 0.0f;
    }
    auto score = r.ReadF64();
    if (!score.ok()) return score.status();
    e.score = *score;
    entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) return DataLoss("trailing bytes in tuning cache");
  entries_ = std::move(entries);
  return Status::Ok();
}

Status TuningCache::SaveTo(const std::string& path) const {
  const auto bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) return DataLoss("short write");
  return Status::Ok();
}

Status TuningCache::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no tuning cache at " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return DataLoss("short read");
  return Deserialize(bytes);
}

}  // namespace aiacc::autotune
