// Warm-up auto-tuning driver (paper §VI): runs the MAB meta-solver for a
// budget of training iterations against a throughput objective. Crucially,
// every evaluated iteration is a *real* training iteration — gradient work
// done while probing a configuration still advances the model, so "no
// computation cycle is wasted".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "autotune/meta_solver.h"
#include "autotune/tuning_cache.h"

namespace aiacc::autotune {

struct TuneRecord {
  int step = 0;
  std::string searcher;
  core::CommConfig config;
  double score = 0.0;
  bool new_best = false;
  /// Fault-pressure delta observed while evaluating this config (0 when no
  /// fault_pressure probe is configured): in-band repair events — unit
  /// retries, retransmits, CRC failures — this evaluation triggered.
  std::uint64_t fault_events = 0;
};

struct AutotuneResult {
  core::CommConfig best_config;
  double best_score = 0.0;
  std::vector<TuneRecord> history;
  std::vector<int> searcher_usage;
  std::vector<std::string> searcher_names;
  bool seeded_from_cache = false;
};

/// Objective: evaluate one warm-up training iteration under `config` and
/// return its throughput (samples/sec; higher is better).
using Objective = std::function<double(const core::CommConfig&)>;

struct AutotuneOptions {
  core::CommConfigSpace space;
  MetaSolverParams solver;
  /// Optional cache consulted (and updated) for similar deployments; the
  /// cached configuration is evaluated first as a seed.
  TuningCache* cache = nullptr;
  const dnn::ModelDescriptor* model = nullptr;   // required when cache set
  std::optional<net::Topology> topology;          // required when cache set

  /// Optional monotonic fault-pressure probe (e.g.
  /// ThreadedAiaccEngine::FaultPressure): sampled before and after each
  /// evaluation; the delta is the repair work (retransmits, unit retries,
  /// CRC failures) that config caused. Its reward is then divided by
  /// (1 + flakiness_penalty * delta), so a config that only scores well
  /// while leaning on the reliability machinery stops being re-selected —
  /// aggressive depth/stream settings must *earn* their throughput through
  /// clean rounds, not through retransmit luck.
  std::function<std::uint64_t()> fault_pressure;
  double flakiness_penalty = 0.0;
};

AutotuneResult Tune(const Objective& objective, AutotuneOptions options);

}  // namespace aiacc::autotune
