// Warm-up auto-tuning driver (paper §VI): runs the MAB meta-solver for a
// budget of training iterations against a throughput objective. Crucially,
// every evaluated iteration is a *real* training iteration — gradient work
// done while probing a configuration still advances the model, so "no
// computation cycle is wasted".
#pragma once

#include <functional>
#include <optional>

#include "autotune/meta_solver.h"
#include "autotune/tuning_cache.h"

namespace aiacc::autotune {

struct TuneRecord {
  int step = 0;
  std::string searcher;
  core::CommConfig config;
  double score = 0.0;
  bool new_best = false;
};

struct AutotuneResult {
  core::CommConfig best_config;
  double best_score = 0.0;
  std::vector<TuneRecord> history;
  std::vector<int> searcher_usage;
  std::vector<std::string> searcher_names;
  bool seeded_from_cache = false;
};

/// Objective: evaluate one warm-up training iteration under `config` and
/// return its throughput (samples/sec; higher is better).
using Objective = std::function<double(const core::CommConfig&)>;

struct AutotuneOptions {
  core::CommConfigSpace space;
  MetaSolverParams solver;
  /// Optional cache consulted (and updated) for similar deployments; the
  /// cached configuration is evaluated first as a seed.
  TuningCache* cache = nullptr;
  const dnn::ModelDescriptor* model = nullptr;   // required when cache set
  std::optional<net::Topology> topology;          // required when cache set
};

AutotuneResult Tune(const Objective& objective, AutotuneOptions options);

}  // namespace aiacc::autotune
