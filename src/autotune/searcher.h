// Search-technique interface for the communication-parameter auto-tuner
// (paper §VI). Each technique proposes one CommConfig per tuning step (one
// warm-up training iteration) and observes the measured throughput. The
// ensemble is coordinated by the MAB meta-solver.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"

namespace aiacc::autotune {

struct Observation {
  core::CommConfig config;
  /// Higher is better (training throughput, samples/sec).
  double score = 0.0;
};

class Searcher {
 public:
  explicit Searcher(core::CommConfigSpace space) : space_(std::move(space)) {}
  virtual ~Searcher() = default;

  /// Propose the next configuration to evaluate.
  virtual core::CommConfig Propose(Rng& rng) = 0;
  /// Feed back the result of evaluating a proposal from this searcher.
  virtual void Observe(const Observation& obs) = 0;
  [[nodiscard]] virtual std::string Name() const = 0;

 protected:
  core::CommConfigSpace space_;
};

/// Exhaustive sweep in a stratified order (coarse-to-fine over the grid), so
/// even a small budget covers the extremes of each axis early.
class GridSearcher final : public Searcher {
 public:
  explicit GridSearcher(core::CommConfigSpace space);
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override;
  [[nodiscard]] std::string Name() const override { return "grid"; }

 private:
  std::vector<std::size_t> order_;
  std::size_t next_ = 0;
};

/// Population-based training (Jaderberg et al.): keep a population of
/// configurations; exploit (clone a top performer) + explore (perturb one
/// axis) replace the bottom performers.
class PbtSearcher final : public Searcher {
 public:
  PbtSearcher(core::CommConfigSpace space, int population = 8);
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override;
  [[nodiscard]] std::string Name() const override { return "pbt"; }

 private:
  struct Member {
    core::CommConfig config;
    double score = 0.0;
    bool evaluated = false;
  };
  core::CommConfig Perturb(const core::CommConfig& base, Rng& rng) const;

  int population_size_;
  std::vector<Member> population_;
  std::size_t pending_ = 0;  // member awaiting observation
  bool initialized_ = false;
};

/// Bayesian optimization with a Gaussian-process surrogate (RBF kernel over
/// the normalized parameter space) and expected-improvement acquisition over
/// the discrete grid.
class BayesSearcher final : public Searcher {
 public:
  explicit BayesSearcher(core::CommConfigSpace space);
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override;
  [[nodiscard]] std::string Name() const override { return "bayes"; }

 private:
  [[nodiscard]] std::vector<double> Encode(const core::CommConfig& c) const;

  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
};

/// Hyperband-style successive halving: evaluate a rung of sampled configs
/// with one observation each, promote the top 1/eta to the next rung for
/// re-evaluation (scores are averaged across rungs), restart brackets when
/// exhausted.
class HyperbandSearcher final : public Searcher {
 public:
  HyperbandSearcher(core::CommConfigSpace space, int rung_size = 9,
                    int eta = 3);
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override;
  [[nodiscard]] std::string Name() const override { return "hyperband"; }

 private:
  struct Candidate {
    core::CommConfig config;
    double score_sum = 0.0;
    int evals = 0;
    [[nodiscard]] double Mean() const {
      return evals > 0 ? score_sum / evals : 0.0;
    }
  };
  void StartBracket(Rng& rng);

  int rung_size_;
  int eta_;
  std::vector<Candidate> rung_;
  std::size_t next_in_rung_ = 0;
  bool bracket_active_ = false;
};

/// Uniform random sampling — the baseline any learned searcher must beat,
/// and the simplest demonstration that "other search techniques can be
/// added" to the ensemble (§VI).
class RandomSearcher final : public Searcher {
 public:
  explicit RandomSearcher(core::CommConfigSpace space)
      : Searcher(std::move(space)) {}
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override { (void)obs; }
  [[nodiscard]] std::string Name() const override { return "random"; }
};

/// Simulated annealing: random walk over grid neighbours, accepting worse
/// moves with a temperature-decayed probability.
class AnnealingSearcher final : public Searcher {
 public:
  AnnealingSearcher(core::CommConfigSpace space, double initial_temp = 1.0,
                    double cooling = 0.92);
  core::CommConfig Propose(Rng& rng) override;
  void Observe(const Observation& obs) override;
  [[nodiscard]] std::string Name() const override { return "annealing"; }

 private:
  core::CommConfig Neighbour(const core::CommConfig& base, Rng& rng) const;

  double temperature_;
  double cooling_;
  bool has_current_ = false;
  core::CommConfig current_;
  double current_score_ = 0.0;
  core::CommConfig proposed_;
};

/// The ensemble the paper uses: grid, PBT, Bayesian optimization, Hyperband.
std::vector<std::unique_ptr<Searcher>> MakeDefaultEnsemble(
    const core::CommConfigSpace& space);

/// Extended ensemble (default + random + annealing) — exercised by the
/// meta-solver tests to show arm count is not hard-wired.
std::vector<std::unique_ptr<Searcher>> MakeExtendedEnsemble(
    const core::CommConfigSpace& space);

}  // namespace aiacc::autotune
