// Seeded, deterministic fault injection over any Transport (the chaos layer
// of the reproduction's robustness work). A FaultyTransport decorates an
// inner transport with a per-(src, dst) fault policy:
//
//   * delay/jitter   — sender-side sleep before delivery;
//   * drop           — the message is lost (a strict receiver times out);
//   * duplication    — the message is delivered twice;
//   * reordering     — the message is held and delivered after its channel's
//                      next message (a strict receiver that needs the held
//                      message as its next in-order delivery claims it
//                      directly, so reordering never turns into loss);
//   * rank crash     — a blackhole: every message from/to the crashed rank
//                      is silently discarded (models a dead node — peers
//                      only notice via missing heartbeats / timeouts);
//   * straggling     — a fixed extra delay on every send from one rank.
//
// Which messages are perturbed is a pure function of (seed, src, dst, tag,
// sequence number), so a fault schedule replays identically across runs —
// chaos tests are reproducible by seed.
//
// Delivery semantics: each (src, dst, tag) channel carries a sequence
// number. Recv/RecvFor are *strict*: duplicates are discarded, reordered
// messages are reassembled in order, and a gap (dropped message) makes the
// receiver wait until its deadline — so a faulty channel either yields the
// exact sent stream or a non-OK status, never a silently corrupted one.
// TryRecv is *datagram-style*: it delivers the oldest available message and
// skips gaps, which is what heartbeat freshness checks want. Do not mix the
// two styles on one channel.
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "transport/inproc.h"

namespace aiacc::transport {

/// Fault policy of one directed (src, dst) link.
struct LinkFaults {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  double delay_prob = 0.0;
  /// When delayed, the extra latency is uniform in [0, max_delay_ms).
  double max_delay_ms = 0.0;

  [[nodiscard]] bool Any() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
           delay_prob > 0.0;
  }
};

/// A complete seeded fault schedule.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Policy applied to every directed pair unless overridden below.
  LinkFaults all_links;
  /// Per-(src, dst) overrides.
  std::map<std::pair<int, int>, LinkFaults> per_link;

  /// Rank to crash (-1 = none): once it has issued `crash_after_sends`
  /// sends, all its traffic (both directions) is blackholed.
  int crash_rank = -1;
  std::uint64_t crash_after_sends = 0;

  /// Rank whose every send is slowed by `straggler_delay_ms` (-1 = none).
  int straggler_rank = -1;
  double straggler_delay_ms = 0.0;
};

/// Injection counters (what the schedule actually did — tests assert on
/// these to prove the chaos layer was exercised).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t blackholed = 0;
};

class FaultyTransport final : public Transport {
 public:
  /// `inner` must outlive this decorator.
  FaultyTransport(Transport& inner, FaultSpec spec);
  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept override {
    return inner_.world_size();
  }

  void Send(int src, int dst, int tag, Payload payload) override;
  Result<Payload> Recv(int rank, int src, int tag) override;
  Result<Payload> RecvFor(int rank, int src, int tag,
                          std::chrono::milliseconds timeout) override;
  std::optional<Payload> TryRecv(int rank, int src, int tag) override;

  void Shutdown() override { inner_.Shutdown(); }
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return inner_.IsShutdown();
  }
  Status Barrier() override { return inner_.Barrier(); }
  [[nodiscard]] std::uint64_t TotalMessages() const override {
    return inner_.TotalMessages();
  }

  /// Manually blackhole a rank (in addition to the scheduled crash).
  void CrashRank(int rank);
  [[nodiscard]] bool IsCrashed(int rank) const;

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

 private:
  struct SendChannel {
    std::uint64_t next_seq = 0;
    /// A reorder victim waiting for the channel's next send.
    std::optional<Payload> held;
  };
  struct RecvChannel {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Payload> stash;  // out-of-order arrivals
  };

  using ChannelKey = std::tuple<int, int, int>;  // strict ordering on maps

  [[nodiscard]] const LinkFaults& FaultsFor(int src, int dst) const;
  /// Deterministic per-message decision stream.
  [[nodiscard]] Rng DecisionRng(int src, int dst, int tag,
                                std::uint64_t seq) const;
  /// Frame/deframe: the wire payload carries [seq, data...].
  static Payload Frame(std::uint64_t seq, const Payload& data);
  /// Stash-aware in-order receive step.
  std::optional<Payload> TakeExpectedLocked(RecvChannel& ch) REQUIRES(mu_);

  Transport& inner_;     // NOLOCK(internally synchronized Transport)
  const FaultSpec spec_;

  mutable common::Mutex mu_{"faulty-transport", common::lock_rank::kTransport};
  std::map<ChannelKey, SendChannel> send_channels_ GUARDED_BY(mu_);  // (src, dst, tag)
  std::map<ChannelKey, RecvChannel> recv_channels_ GUARDED_BY(mu_);  // (rank, src, tag)
  std::vector<char> crashed_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> sends_by_rank_ GUARDED_BY(mu_);
  FaultStats stats_ GUARDED_BY(mu_);
};

}  // namespace aiacc::transport
