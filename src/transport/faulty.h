// Seeded, deterministic fault injection over any Transport (the chaos layer
// of the reproduction's robustness work). A FaultyTransport decorates an
// inner transport with a per-(src, dst) fault policy:
//
//   * delay/jitter   — sender-side sleep before delivery;
//   * drop           — the message is lost (a strict receiver times out);
//   * duplication    — the message is delivered twice;
//   * reordering     — the message is held and delivered after its channel's
//                      next message (a strict receiver that needs the held
//                      message as its next in-order delivery claims it
//                      directly, so reordering never turns into loss);
//   * corruption     — one bit of one payload lane is flipped in transit
//                      (the CRC layer in transport/reliable.h exists to
//                      catch exactly this);
//   * rank crash     — a blackhole: every message from/to the crashed rank
//                      is silently discarded (models a dead node — peers
//                      only notice via missing heartbeats / timeouts);
//   * straggling     — a fixed extra delay on every send from one rank.
//
// Which messages are perturbed is a pure function of (seed, src, dst, tag,
// sequence number), so a fault schedule replays identically across runs —
// chaos tests are reproducible by seed, and a schedule serializes to JSON
// for replay across processes (transport/fault_schedule.h).
//
// Delivery semantics, selected by FaultSpec::delivery:
//
//   kStrict (default): each (src, dst, tag) channel carries a sequence
//   number. Recv/RecvFor reassemble: duplicates are discarded, reordered
//   messages are delivered in order, and a gap (dropped message) makes the
//   receiver wait until its deadline — so a faulty channel either yields
//   the exact sent stream or a non-OK status, never a silently corrupted
//   one. (Corruption in strict mode only ever hits body lanes, never the
//   sequence header, preserving that contract.) TryRecv is
//   *datagram-style*: it delivers the oldest available message and skips
//   gaps, which is what heartbeat freshness checks want. Do not mix the
//   two styles on one channel.
//
//   kRaw: no framing, no reassembly — drops, duplicates, reorders, and
//   corrupt bits reach the receiver exactly as the wire would deliver
//   them. This is the mode ReliableTransport decorates: the reliability
//   layer owns sequencing and integrity, so the chaos layer must not
//   quietly repair the stream underneath it.
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "transport/inproc.h"

namespace aiacc::transport {

/// Fault policy of one directed (src, dst) link.
struct LinkFaults {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;
  /// Probability of flipping one random bit of one payload lane.
  double corrupt_prob = 0.0;
  double delay_prob = 0.0;
  /// When delayed, the extra latency is uniform in [0, max_delay_ms).
  double max_delay_ms = 0.0;

  [[nodiscard]] bool Any() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
           corrupt_prob > 0.0 || delay_prob > 0.0;
  }

  friend bool operator==(const LinkFaults&, const LinkFaults&) = default;
};

/// Fault policy applied only to a contiguous tag window — how chaos tests
/// target one logical channel (e.g. one multi-channel ring's namespace)
/// while the rest of the transport stays healthy.
struct TagFaults {
  int tag_lo = 0;  // inclusive
  int tag_hi = 0;  // inclusive
  LinkFaults faults;

  friend bool operator==(const TagFaults&, const TagFaults&) = default;
};

/// Receiver-side semantics of the chaos layer (see file header).
enum class FaultDelivery { kStrict, kRaw };

/// A complete seeded fault schedule.
struct FaultSpec {
  std::uint64_t seed = 1;
  FaultDelivery delivery = FaultDelivery::kStrict;
  /// Policy applied to every directed pair unless overridden below.
  LinkFaults all_links;
  /// Per-(src, dst) overrides.
  std::map<std::pair<int, int>, LinkFaults> per_link;
  /// Per-tag-window overrides (first matching window wins; consulted
  /// before per_link/all_links).
  std::vector<TagFaults> per_tag;

  /// Rank to crash (-1 = none): once it has issued `crash_after_sends`
  /// sends, all its traffic (both directions) is blackholed.
  int crash_rank = -1;
  std::uint64_t crash_after_sends = 0;

  /// Rank whose every send is slowed by `straggler_delay_ms` (-1 = none).
  int straggler_rank = -1;
  double straggler_delay_ms = 0.0;
};

/// Injection counters (what the schedule actually did — tests assert on
/// these to prove the chaos layer was exercised). `delivered` counts
/// messages handed to consumers on every receive path — blocking, deadline
/// (RecvFor), and non-blocking (TryRecv) alike — so receive-path telemetry
/// stays honest regardless of which primitive a caller drains with.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t delivered = 0;
};

class FaultyTransport final : public Transport {
 public:
  /// `inner` must outlive this decorator.
  FaultyTransport(Transport& inner, FaultSpec spec);
  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept override {
    return inner_.world_size();
  }

  void Send(int src, int dst, int tag, Payload payload) override;
  Result<Payload> Recv(int rank, int src, int tag) override;
  Result<Payload> RecvFor(int rank, int src, int tag,
                          std::chrono::milliseconds timeout) override;
  std::optional<Payload> TryRecv(int rank, int src, int tag) override;

  void Shutdown() override { inner_.Shutdown(); }
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return inner_.IsShutdown();
  }
  Status Barrier() override { return inner_.Barrier(); }
  [[nodiscard]] std::uint64_t TotalMessages() const override {
    return inner_.TotalMessages();
  }

  /// Manually blackhole a rank (in addition to the scheduled crash).
  void CrashRank(int rank);
  [[nodiscard]] bool IsCrashed(int rank) const;

  /// Replace the *dynamic* per-tag fault windows at runtime (consulted
  /// before the spec's own per_tag). This is how chaos-soak tests make a
  /// healthy channel go bad mid-run and later heal it — the quarantine /
  /// probation / re-admission cycle needs faults that change over time.
  /// Takes effect for messages sent after the call; in-flight messages
  /// keep the decision made at send time.
  void SetDynamicTagFaults(std::vector<TagFaults> windows);
  void ClearDynamicTagFaults() { SetDynamicTagFaults({}); }

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

 private:
  struct SendChannel {
    std::uint64_t next_seq = 0;
    /// A reorder victim waiting for the channel's next send.
    std::optional<Payload> held;
  };
  struct RecvChannel {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Payload> stash;  // out-of-order arrivals
  };

  using ChannelKey = std::tuple<int, int, int>;  // strict ordering on maps

  [[nodiscard]] const LinkFaults& FaultsFor(int src, int dst, int tag) const
      REQUIRES(mu_);
  /// Deterministic per-message decision stream.
  [[nodiscard]] Rng DecisionRng(int src, int dst, int tag,
                                std::uint64_t seq) const;
  /// Frame/deframe: the wire payload carries [seq, data...].
  static Payload Frame(std::uint64_t seq, const Payload& data);
  /// Flip one random bit of one lane in [first_lane, size) (no-op on an
  /// empty range).
  static void CorruptLane(Payload& payload, std::size_t first_lane, Rng& rng);
  /// Stash-aware in-order receive step.
  std::optional<Payload> TakeExpectedLocked(RecvChannel& ch) REQUIRES(mu_);
  /// Count + trace one message handed to a consumer.
  void RecordDelivery() EXCLUDES(mu_);

  Transport& inner_;     // NOLOCK(internally synchronized Transport)
  const FaultSpec spec_;
  const bool raw_;  // delivery == kRaw: no framing, no reassembly

  mutable common::Mutex mu_{"faulty-transport", common::lock_rank::kTransport};
  std::map<ChannelKey, SendChannel> send_channels_ GUARDED_BY(mu_);  // (src, dst, tag)
  std::map<ChannelKey, RecvChannel> recv_channels_ GUARDED_BY(mu_);  // (rank, src, tag)
  std::vector<TagFaults> dynamic_per_tag_ GUARDED_BY(mu_);
  std::vector<char> crashed_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> sends_by_rank_ GUARDED_BY(mu_);
  FaultStats stats_ GUARDED_BY(mu_);
};

}  // namespace aiacc::transport
