// Causal-tracing decorator: the observability tier of the transport stack
// (DESIGN.md §7). TracingTransport sits on *top* of the stack
// (inproc -> faulty -> reliable -> tracing) and gives every frame a wire
// trace context (telemetry/trace_context.h):
//
//   * Send appends the stamp trailer — origin rank, per-origin message id,
//     hybrid-logical-clock timestamp — and records a Chrome flow *start*
//     event on the calling thread's lane;
//   * Recv/RecvFor/TryRecv strip the trailer, fold the sender's HLC into
//     the receiving rank's clock, and record the matching flow *end* —
//     binding the recv span to the originating send span across ranks;
//   * both ends derive the flow id from the stamp alone, so no side
//     channel or coordination exists between sender and receiver.
//
// Stamping is decided at construction (`TracingOptions::stamp`), never
// mid-flight: sender and receiver run through the same decorator instance,
// so frames are either all stamped or all pass-through — a frame can never
// race an enable/disable edge and arrive half-interpreted. Flow *events*
// are additionally gated on the global tracer being enabled, so a stamped
// stack with tracing off only pays the trailer copy, and an unstamped
// stack is a pure pass-through.
//
// Zero-alloc: the stamped wire copy comes from a BufferPool (the original
// body is released back), and stripping shrinks in place — the steady
// state of a fixed communication pattern performs no payload allocations
// (asserted in tests/observability_test.cpp).
//
// Clock skew: per-rank synthetic offsets (`rank_skew_ns`) shift the
// physical clock feeding each rank's HLC and are how single-process tests
// and the bench smoke model N machines with disagreeing clocks — the
// offsets are recovered by telemetry::MergeTraces from the flow edges.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/buffer_pool.h"
#include "telemetry/trace_context.h"
#include "telemetry/tracer.h"
#include "transport/inproc.h"

namespace aiacc::transport {

struct TracingOptions {
  /// Append the trace-context trailer to every frame (both endpoints of a
  /// stack share this decorator, so the setting is symmetric by
  /// construction). false = pure pass-through.
  bool stamp = true;
  /// Buffer recycler for the stamped wire copies.
  common::BufferPool* pool = &common::BufferPool::Global();
  /// Tracer receiving flow events (nullptr = the process-global tracer).
  telemetry::RuntimeTracer* tracer = nullptr;
  /// Synthetic per-rank clock offset added to the physical time feeding
  /// that rank's HLC (ns; shorter than world -> missing ranks read 0).
  /// Test-only: models per-machine clock skew inside one process.
  std::vector<std::int64_t> rank_skew_ns;
};

/// What the tracing layer did (per instance).
struct TracingStats {
  std::uint64_t stamped = 0;        // frames sent with a trailer
  std::uint64_t stripped = 0;       // trailers parsed + removed on receive
  std::uint64_t parse_failures = 0; // expected a stamp, lanes did not parse
};

class TracingTransport final : public Transport {
 public:
  /// `inner` must outlive this decorator.
  explicit TracingTransport(Transport& inner, TracingOptions options = {});
  TracingTransport(const TracingTransport&) = delete;
  TracingTransport& operator=(const TracingTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept override {
    return inner_.world_size();
  }

  void Send(int src, int dst, int tag, Payload payload) override;
  Result<Payload> Recv(int rank, int src, int tag) override;
  Result<Payload> RecvFor(int rank, int src, int tag,
                          std::chrono::milliseconds timeout) override;
  std::optional<Payload> TryRecv(int rank, int src, int tag) override;

  void Shutdown() override { inner_.Shutdown(); }
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return inner_.IsShutdown();
  }
  Status Barrier() override { return inner_.Barrier(); }
  [[nodiscard]] std::uint64_t TotalMessages() const override {
    return inner_.TotalMessages();
  }

  [[nodiscard]] TracingStats stats() const noexcept;
  /// Current HLC value of `rank`'s clock (tests assert causal ordering).
  [[nodiscard]] std::int64_t HlcNow(int rank) const noexcept {
    return clocks_[static_cast<std::size_t>(rank)].last();
  }
  [[nodiscard]] bool stamping() const noexcept { return options_.stamp; }

 private:
  /// Physical ns feeding `rank`'s HLC (tracer clock + injected skew).
  [[nodiscard]] std::int64_t PhysicalNow(int rank) const noexcept;
  /// Strip + account an inbound frame in place.
  void Unstamp(int rank, Payload& payload);

  Transport& inner_;  // NOLOCK(internally synchronized Transport)
  const TracingOptions options_;
  common::BufferPool& pool_;             // NOLOCK(internally synchronized)
  telemetry::RuntimeTracer& tracer_;     // NOLOCK(internally synchronized)
  // Per-rank clocks/counters; sized at construction, entries are atomic.
  std::vector<telemetry::HybridLogicalClock> clocks_;  // NOLOCK(atomic entries)
  std::vector<std::atomic<std::uint32_t>> next_msg_id_;  // NOLOCK(atomic entries)
  std::atomic<std::uint64_t> stamped_{0};
  std::atomic<std::uint64_t> stripped_{0};
  std::atomic<std::uint64_t> parse_failures_{0};
};

}  // namespace aiacc::transport
