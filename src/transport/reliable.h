// Reliable delivery decorator: the in-band retry tier of the three-tier
// fault story (DESIGN.md "Fault model & recovery"). ReliableTransport sits
// between the collectives and a lossy transport (a FaultyTransport in *raw*
// delivery mode today; a real socket transport tomorrow) and restores
// exactly-once, in-order, integrity-checked delivery:
//
//   * every Send is framed with a per-(src, dst, tag) sequence number and a
//     CRC32 over the body, split across two 16-bit float lanes (a uint32 is
//     not exactly representable as one float; two 16-bit halves are);
//   * the receiver acks each data frame (selective ack, same tag, demuxed
//     from data by a kind lane — necessary because AllToAll runs both
//     directions of a rank pair on one tag); duplicates are re-acked and
//     discarded, out-of-order arrivals are stashed and delivered in order;
//   * the sender keeps a pooled copy of every unacked frame and a background
//     retransmit daemon resends on a capped exponential backoff
//     (rto_initial_ms doubling to rto_max_ms) until the ack arrives or the
//     per-message deadline expires — at which point the message is dropped
//     and the *receiver's* RecvFor deadline surfaces the failure to tier 2
//     (channel quarantine) or tier 3 (checkpoint recovery);
//   * a corrupted frame fails its CRC, is counted and discarded, and heals
//     through the normal retransmit path — corruption is just loss.
//
// All retransmit copies and delivered bodies come from a BufferPool, so the
// steady state of a fixed communication pattern performs zero payload
// allocations even while retransmitting (asserted in tests/reliable_test).
//
// Concurrency: one internal mutex (lock_rank::kReliableTransport, *below*
// kTransport so the daemon may call into a decorated FaultyTransport while
// holding it) guards the tx/rx channel maps. Consumers pull their own
// (src, tag) channel from the inner transport in short quanta and feed every
// frame (data or ack) through the shared demux; the daemon drains channels
// with no active consumer so acks never rot in an unread mailbox. Sends to
// the inner transport happen *outside* the mutex (a fault decorator may
// sleep in Send).
//
// Telemetry (process registry): `reliable.retransmits`,
// `reliable.crc_failures`, `reliable.delivery_failures`, `reliable.acks`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <tuple>

#include "common/buffer_pool.h"
#include "common/status.h"
#include "common/sync.h"
#include "transport/inproc.h"

namespace aiacc::transport {

/// Retransmission policy. Defaults suit the in-process chaos tests (RTTs of
/// microseconds, fault-injected delays of milliseconds).
struct ReliableOptions {
  /// First retransmit fires this long after the original send.
  std::int64_t rto_initial_ms = 10;
  /// Backoff cap: rto doubles per retransmit up to this.
  std::int64_t rto_max_ms = 160;
  /// Give up retransmitting a frame this long after its first send (<= 0 =
  /// retry forever). A dropped frame becomes the receiver's RecvFor
  /// deadline problem — the hand-off from tier 1 to tiers 2/3.
  std::int64_t message_deadline_ms = 10000;
  /// Retransmit-daemon scan period.
  std::int64_t daemon_tick_ms = 1;
  /// Buffer recycler for retransmit copies and delivered bodies.
  common::BufferPool* pool = &common::BufferPool::Global();
};

/// What the reliability layer did (per instance; the process-global
/// telemetry counters aggregate across instances).
struct ReliableStats {
  std::uint64_t data_frames_sent = 0;  // first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t crc_failures = 0;      // frames discarded on checksum
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t delivery_failures = 0; // frames given up after deadline
  std::uint64_t delivered = 0;         // bodies handed to consumers
};

class ReliableTransport final : public Transport {
 public:
  /// `inner` must outlive this decorator. If `inner` is a FaultyTransport
  /// it must run FaultDelivery::kRaw — strict mode would add a second
  /// (redundant) sequencing layer under this one.
  explicit ReliableTransport(Transport& inner, ReliableOptions options = {});
  ~ReliableTransport() override;
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept override {
    return inner_.world_size();
  }

  void Send(int src, int dst, int tag, Payload payload) override;
  Result<Payload> Recv(int rank, int src, int tag) override;
  Result<Payload> RecvFor(int rank, int src, int tag,
                          std::chrono::milliseconds timeout) override;
  /// Non-blocking, but still strict: delivers only the next in-order frame
  /// (after draining whatever the inner transport has pending). Reliable
  /// channels never skip gaps — a gap is a retransmit in flight.
  std::optional<Payload> TryRecv(int rank, int src, int tag) override;

  void Shutdown() override;
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return inner_.IsShutdown();
  }
  Status Barrier() override { return inner_.Barrier(); }
  [[nodiscard]] std::uint64_t TotalMessages() const override {
    return inner_.TotalMessages();
  }

  [[nodiscard]] ReliableStats stats() const;
  [[nodiscard]] const ReliableOptions& options() const noexcept {
    return options_;
  }

 private:
  using ChannelKey = std::tuple<int, int, int>;

  /// One unacked frame: the pooled wire copy plus its retransmit clock.
  struct TxFrame {
    Payload wire;  // full frame (header + body), retransmitted verbatim
    std::chrono::steady_clock::time_point first_sent;
    std::chrono::steady_clock::time_point next_resend;
    std::int64_t rto_ms = 0;
  };
  struct TxChannel {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, TxFrame> inflight;
  };
  struct RxChannel {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Payload> stash;  // out-of-order bodies
    int consumers = 0;  // active Recv/RecvFor pullers (daemon skips if > 0)
  };

  /// Feed one raw frame from the inner transport through the demux;
  /// collects any ack frame to send into `acks_out` (sent by the caller
  /// outside the mutex). `rank` is the receiving rank, `src` the peer.
  void ProcessRawFrame(int rank, int src, int tag, Payload frame,
                       std::vector<std::tuple<int, int, int, Payload>>&
                           acks_out);
  /// Take the next in-order body if present.
  std::optional<Payload> TakeExpectedLocked(RxChannel& ch) REQUIRES(mu_);
  void DaemonLoop();
  /// One daemon pass: drain unconsumed channels, retransmit, expire.
  void DaemonTick();

  Transport& inner_;  // NOLOCK(internally synchronized Transport)
  const ReliableOptions options_;
  common::BufferPool& pool_;  // NOLOCK(internally synchronized)

  mutable common::Mutex mu_{"reliable-transport",
                            common::lock_rank::kReliableTransport};
  std::map<ChannelKey, TxChannel> tx_ GUARDED_BY(mu_);  // (src, dst, tag)
  std::map<ChannelKey, RxChannel> rx_ GUARDED_BY(mu_);  // (rank, src, tag)
  ReliableStats stats_ GUARDED_BY(mu_);

  std::atomic<bool> stop_{false};
  std::thread daemon_;  // NOLOCK(started in ctor, joined in dtor)
};

}  // namespace aiacc::transport
