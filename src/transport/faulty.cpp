#include "transport/faulty.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/tracer.h"

namespace aiacc::transport {
namespace {

/// SplitMix64 finalizer — mixes the schedule seed with message coordinates
/// into an independent per-message decision seed.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Sequence numbers ride in a float lane; 2^24 is the last exactly
/// representable integer, far beyond any test's message count.
constexpr std::uint64_t kMaxSeq = 1ULL << 24;

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, FaultSpec spec)
    : inner_(inner),
      spec_(std::move(spec)),
      raw_(spec_.delivery == FaultDelivery::kRaw),
      crashed_(static_cast<std::size_t>(inner.world_size()), 0),
      sends_by_rank_(static_cast<std::size_t>(inner.world_size()), 0) {
  AIACC_CHECK(spec_.crash_rank < inner.world_size());
  AIACC_CHECK(spec_.straggler_rank < inner.world_size());
  for (const TagFaults& w : spec_.per_tag) {
    AIACC_CHECK(w.tag_lo <= w.tag_hi);
  }
}

const LinkFaults& FaultyTransport::FaultsFor(int src, int dst,
                                             int tag) const {
  for (const TagFaults& w : dynamic_per_tag_) {
    if (tag >= w.tag_lo && tag <= w.tag_hi) return w.faults;
  }
  for (const TagFaults& w : spec_.per_tag) {
    if (tag >= w.tag_lo && tag <= w.tag_hi) return w.faults;
  }
  auto it = spec_.per_link.find({src, dst});
  return it != spec_.per_link.end() ? it->second : spec_.all_links;
}

Rng FaultyTransport::DecisionRng(int src, int dst, int tag,
                                 std::uint64_t seq) const {
  std::uint64_t h = Mix(spec_.seed, static_cast<std::uint64_t>(src) + 1);
  h = Mix(h, static_cast<std::uint64_t>(dst) + 1);
  h = Mix(h, static_cast<std::uint64_t>(tag) + 1);
  h = Mix(h, seq + 1);
  return Rng(h);
}

Payload FaultyTransport::Frame(std::uint64_t seq, const Payload& data) {
  AIACC_CHECK(seq < kMaxSeq);
  Payload framed;
  framed.reserve(data.size() + 1);
  framed.push_back(static_cast<float>(seq));
  framed.insert(framed.end(), data.begin(), data.end());
  return framed;
}

void FaultyTransport::CorruptLane(Payload& payload, std::size_t first_lane,
                                  Rng& rng) {
  if (payload.size() <= first_lane) return;
  const auto lane = static_cast<std::size_t>(rng.UniformInt(
      static_cast<std::int64_t>(first_lane),
      static_cast<std::int64_t>(payload.size()) - 1));
  const auto bit = static_cast<std::uint32_t>(rng.UniformInt(0, 31));
  std::uint32_t word;
  std::memcpy(&word, &payload[lane], sizeof(word));
  word ^= (1u << bit);
  std::memcpy(&payload[lane], &word, sizeof(word));
}

void FaultyTransport::RecordDelivery() {
  {
    common::MutexLock lock(mu_);
    ++stats_.delivered;
  }
  AIACC_TRACE_INSTANT_V("transport", "recv");
}

void FaultyTransport::SetDynamicTagFaults(std::vector<TagFaults> windows) {
  for (const TagFaults& w : windows) AIACC_CHECK(w.tag_lo <= w.tag_hi);
  common::MutexLock lock(mu_);
  dynamic_per_tag_ = std::move(windows);
}

void FaultyTransport::Send(int src, int dst, int tag, Payload payload) {
  double sleep_ms = 0.0;
  std::vector<Payload> out;  // wire messages, in delivery order
  {
    common::MutexLock lock(mu_);
    const std::uint64_t sent =
        ++sends_by_rank_[static_cast<std::size_t>(src)];
    if (src == spec_.crash_rank && sent > spec_.crash_after_sends &&
        crashed_[static_cast<std::size_t>(src)] == 0) {
      crashed_[static_cast<std::size_t>(src)] = 1;
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kFatal, "transport.faulty", "crash",
          src, /*channel=*/-1, tag,
          /*detail0=*/static_cast<std::int64_t>(sent));
    }
    if (crashed_[static_cast<std::size_t>(src)] ||
        crashed_[static_cast<std::size_t>(dst)]) {
      ++stats_.blackholed;
      return;
    }

    SendChannel& ch = send_channels_[{src, dst, tag}];
    const std::uint64_t seq = ch.next_seq++;
    const LinkFaults& f = FaultsFor(src, dst, tag);
    Rng rng = DecisionRng(src, dst, tag, seq);

    if (src == spec_.straggler_rank && spec_.straggler_delay_ms > 0.0) {
      sleep_ms += spec_.straggler_delay_ms;
      ++stats_.delayed;
    }
    if (f.delay_prob > 0.0 && rng.Chance(f.delay_prob)) {
      sleep_ms += rng.Uniform(0.0, f.max_delay_ms);
      ++stats_.delayed;
    }

    if (f.drop_prob > 0.0 && rng.Chance(f.drop_prob)) {
      // The sequence number is consumed: a strict receiver sees the gap and
      // times out rather than silently reducing over a short stream.
      ++stats_.dropped;
    } else {
      Payload wire = raw_ ? std::move(payload) : Frame(seq, payload);
      if (f.corrupt_prob > 0.0 && rng.Chance(f.corrupt_prob)) {
        // Strict mode never corrupts the seq header (lane 0): its contract
        // is exact-stream-or-timeout, and a flipped seq would alias another
        // message instead of corrupting this one's bytes. Raw mode corrupts
        // any lane — the reliable layer's CRC covers its whole frame.
        CorruptLane(wire, raw_ ? 0 : 1, rng);
        ++stats_.corrupted;
      }
      if (f.reorder_prob > 0.0 && rng.Chance(f.reorder_prob) && !ch.held) {
        ch.held = std::move(wire);  // delivered after the next send
        ++stats_.reordered;
      } else {
        if (f.dup_prob > 0.0 && rng.Chance(f.dup_prob)) {
          out.push_back(wire);  // a copy — the duplicate
          ++stats_.duplicated;
        }
        out.push_back(std::move(wire));
        if (ch.held) {
          out.push_back(std::move(*ch.held));
          ch.held.reset();
        }
      }
    }
  }
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        sleep_ms));
  }
  for (Payload& wire : out) inner_.Send(src, dst, tag, std::move(wire));
}

std::optional<Payload> FaultyTransport::TakeExpectedLocked(RecvChannel& ch) {
  auto it = ch.stash.find(ch.expected);
  if (it == ch.stash.end()) return std::nullopt;
  Payload payload = std::move(it->second);
  ch.stash.erase(it);
  ++ch.expected;
  return payload;
}

Result<Payload> FaultyTransport::Recv(int rank, int src, int tag) {
  return RecvFor(rank, src, tag, kNoTimeout);
}

Result<Payload> FaultyTransport::RecvFor(int rank, int src, int tag,
                                         std::chrono::milliseconds timeout) {
  if (raw_) {
    // Raw mode: what the wire delivers is what the caller gets. Same
    // delivery telemetry as the strict path — a message is a message no
    // matter which semantics handed it over.
    Result<Payload> raw = inner_.RecvFor(rank, src, tag, timeout);
    if (raw.ok()) RecordDelivery();
    return raw;
  }
  const bool bounded = timeout > kNoTimeout;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Poll quantum: the receiver periodically rechecks the sender's reorder
  // hold even while the inner transport is silent, so a held message can
  // never starve a strict receiver (lossless schedules stay lossless).
  constexpr auto kQuantum = std::chrono::milliseconds(20);
  while (true) {
    {
      common::MutexLock lock(mu_);
      RecvChannel& ch = recv_channels_[{rank, src, tag}];
      if (auto payload = TakeExpectedLocked(ch)) {
        lock.Unlock();
        RecordDelivery();
        return *std::move(payload);
      }
      // The exact message we need may be sitting in the sender-side reorder
      // hold with no follow-up send coming to flush it — claim it directly.
      auto sit = send_channels_.find({src, rank, tag});
      if (sit != send_channels_.end() && sit->second.held &&
          static_cast<std::uint64_t>((*sit->second.held)[0]) == ch.expected) {
        Payload body(sit->second.held->begin() + 1, sit->second.held->end());
        sit->second.held.reset();
        ++ch.expected;
        lock.Unlock();
        RecordDelivery();
        return body;
      }
    }

    auto wait = kQuantum;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::milliseconds::zero()) {
        return DeadlineExceeded("no in-order message from rank " +
                                std::to_string(src) + " tag " +
                                std::to_string(tag));
      }
      wait = std::min(wait, remaining);
    }
    Result<Payload> raw = inner_.RecvFor(rank, src, tag, wait);
    if (!raw.ok()) {
      // Quantum expiry: go around and recheck stash/hold/deadline.
      if (raw.status().code() == StatusCode::kDeadlineExceeded) continue;
      return raw.status();
    }
    if (raw->empty()) return Internal("unframed message on faulty channel");

    const auto seq = static_cast<std::uint64_t>((*raw)[0]);
    Payload body(raw->begin() + 1, raw->end());
    {
      common::MutexLock lock(mu_);
      RecvChannel& ch = recv_channels_[{rank, src, tag}];
      if (seq == ch.expected) {
        ++ch.expected;
        lock.Unlock();
        RecordDelivery();
        return body;
      }
      if (seq > ch.expected) ch.stash[seq] = std::move(body);
      // seq < expected: a duplicate of something already delivered —
      // discard.
    }
  }
}

std::optional<Payload> FaultyTransport::TryRecv(int rank, int src, int tag) {
  if (raw_) {
    auto raw = inner_.TryRecv(rank, src, tag);
    if (raw) RecordDelivery();
    return raw;
  }
  // Drain every raw arrival into the stash first...
  while (auto raw = inner_.TryRecv(rank, src, tag)) {
    if (raw->empty()) continue;
    const auto seq = static_cast<std::uint64_t>((*raw)[0]);
    Payload body(raw->begin() + 1, raw->end());
    common::MutexLock lock(mu_);
    RecvChannel& ch = recv_channels_[{rank, src, tag}];
    if (seq >= ch.expected) ch.stash[seq] = std::move(body);
  }
  // ...then deliver the oldest one, skipping gaps (datagram semantics: a
  // heartbeat reader cares that *something recent* arrived, not that every
  // beat did).
  std::optional<Payload> payload;
  {
    common::MutexLock lock(mu_);
    RecvChannel& ch = recv_channels_[{rank, src, tag}];
    if (ch.stash.empty()) return std::nullopt;
    auto it = ch.stash.begin();
    payload = std::move(it->second);
    ch.expected = it->first + 1;
    ch.stash.erase(it);
  }
  RecordDelivery();
  return payload;
}

void FaultyTransport::CrashRank(int rank) {
  AIACC_CHECK(rank >= 0 && rank < world_size());
  common::MutexLock lock(mu_);
  if (crashed_[static_cast<std::size_t>(rank)] == 0) {
    crashed_[static_cast<std::size_t>(rank)] = 1;
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightSeverity::kFatal, "transport.faulty", "crash", rank);
  }
}

bool FaultyTransport::IsCrashed(int rank) const {
  AIACC_CHECK(rank >= 0 && rank < world_size());
  common::MutexLock lock(mu_);
  return crashed_[static_cast<std::size_t>(rank)] != 0;
}

FaultStats FaultyTransport::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

}  // namespace aiacc::transport
