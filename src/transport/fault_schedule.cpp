#include "transport/fault_schedule.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace aiacc::transport {
namespace {

// --- writer ----------------------------------------------------------------

/// Doubles print round-trippably (%.17g) but small probabilities stay
/// readable ("0.01" not "0.01000000000000000021").
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // %.12g keeps every probability/delay used in practice exact; values that
  // need more digits round-trip through the %.17g fallback.
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void AppendLinkFaults(std::ostringstream& out, const LinkFaults& f,
                      const std::string& indent) {
  out << "{\n"
      << indent << "  \"drop_prob\": " << Num(f.drop_prob) << ",\n"
      << indent << "  \"dup_prob\": " << Num(f.dup_prob) << ",\n"
      << indent << "  \"reorder_prob\": " << Num(f.reorder_prob) << ",\n"
      << indent << "  \"corrupt_prob\": " << Num(f.corrupt_prob) << ",\n"
      << indent << "  \"delay_prob\": " << Num(f.delay_prob) << ",\n"
      << indent << "  \"max_delay_ms\": " << Num(f.max_delay_ms) << "\n"
      << indent << "}";
}

// --- parser ----------------------------------------------------------------

/// Minimal recursive-descent JSON reader over the subset the writer emits:
/// objects, arrays, numbers, strings (no escapes needed for this schema),
/// and the two schema enums. Position-tracked for error messages.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  Status Fail(const std::string& msg) const {
    return InvalidArgument("fault schedule: " + msg + " at offset " +
                           std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  Result<std::string> ParseString() {
    SkipWs();
    if (!Consume('"')) return Fail("expected string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return Fail("escapes not supported");
      out.push_back(text_[pos_++]);
    }
    if (!Consume('"')) return Fail("unterminated string");
    return out;
  }

  Result<double> ParseNumber() {
    SkipWs();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  /// Iterate an object's key/value pairs: on_key parses the value.
  Status ParseObject(
      const std::function<Status(const std::string& key)>& on_key) {
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return Status::Ok();
    while (true) {
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Fail("expected ':'");
      AIACC_RETURN_IF_ERROR(on_key(*key));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(const std::function<Status()>& on_element) {
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return Status::Ok();
    while (true) {
      AIACC_RETURN_IF_ERROR(on_element());
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Status ParseLinkFaults(Reader& r, LinkFaults* out) {
  return r.ParseObject([&](const std::string& key) -> Status {
    Result<double> v = r.ParseNumber();
    if (!v.ok()) return v.status();
    if (key == "drop_prob") out->drop_prob = *v;
    else if (key == "dup_prob") out->dup_prob = *v;
    else if (key == "reorder_prob") out->reorder_prob = *v;
    else if (key == "corrupt_prob") out->corrupt_prob = *v;
    else if (key == "delay_prob") out->delay_prob = *v;
    else if (key == "max_delay_ms") out->max_delay_ms = *v;
    else return r.Fail("unknown link-fault key '" + key + "'");
    return Status::Ok();
  });
}

Result<int> ParseInt(Reader& r) {
  Result<double> v = r.ParseNumber();
  if (!v.ok()) return v.status();
  const int i = static_cast<int>(*v);
  if (static_cast<double>(i) != *v) return r.Fail("expected integer");
  return i;
}

}  // namespace

std::string FaultScheduleToJson(const FaultSpec& spec) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"seed\": " << spec.seed << ",\n";
  out << "  \"delivery\": \""
      << (spec.delivery == FaultDelivery::kRaw ? "raw" : "strict")
      << "\",\n";
  out << "  \"all_links\": ";
  AppendLinkFaults(out, spec.all_links, "  ");
  out << ",\n  \"per_link\": [";
  bool first = true;
  for (const auto& [link, faults] : spec.per_link) {
    out << (first ? "\n" : ",\n") << "    {\"src\": " << link.first
        << ", \"dst\": " << link.second << ", \"faults\": ";
    AppendLinkFaults(out, faults, "    ");
    out << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"per_tag\": [";
  first = true;
  for (const TagFaults& w : spec.per_tag) {
    out << (first ? "\n" : ",\n") << "    {\"tag_lo\": " << w.tag_lo
        << ", \"tag_hi\": " << w.tag_hi << ", \"faults\": ";
    AppendLinkFaults(out, w.faults, "    ");
    out << "}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n";
  out << "  \"crash_rank\": " << spec.crash_rank << ",\n";
  out << "  \"crash_after_sends\": " << spec.crash_after_sends << ",\n";
  out << "  \"straggler_rank\": " << spec.straggler_rank << ",\n";
  out << "  \"straggler_delay_ms\": " << Num(spec.straggler_delay_ms) << "\n";
  out << "}\n";
  return out.str();
}

Result<FaultSpec> FaultScheduleFromJson(const std::string& json) {
  Reader r(json);
  FaultSpec spec;
  const Status st = r.ParseObject([&](const std::string& key) -> Status {
    if (key == "seed") {
      Result<double> v = r.ParseNumber();
      if (!v.ok()) return v.status();
      spec.seed = static_cast<std::uint64_t>(*v);
      return Status::Ok();
    }
    if (key == "delivery") {
      Result<std::string> v = r.ParseString();
      if (!v.ok()) return v.status();
      if (*v == "raw") spec.delivery = FaultDelivery::kRaw;
      else if (*v == "strict") spec.delivery = FaultDelivery::kStrict;
      else return r.Fail("unknown delivery mode '" + *v + "'");
      return Status::Ok();
    }
    if (key == "all_links") return ParseLinkFaults(r, &spec.all_links);
    if (key == "per_link") {
      return r.ParseArray([&]() -> Status {
        int src = -1;
        int dst = -1;
        LinkFaults faults;
        AIACC_RETURN_IF_ERROR(
            r.ParseObject([&](const std::string& k) -> Status {
              if (k == "src" || k == "dst") {
                Result<int> v = ParseInt(r);
                if (!v.ok()) return v.status();
                (k == "src" ? src : dst) = *v;
                return Status::Ok();
              }
              if (k == "faults") return ParseLinkFaults(r, &faults);
              return r.Fail("unknown per_link key '" + k + "'");
            }));
        spec.per_link[{src, dst}] = faults;
        return Status::Ok();
      });
    }
    if (key == "per_tag") {
      return r.ParseArray([&]() -> Status {
        TagFaults w;
        AIACC_RETURN_IF_ERROR(
            r.ParseObject([&](const std::string& k) -> Status {
              if (k == "tag_lo" || k == "tag_hi") {
                Result<int> v = ParseInt(r);
                if (!v.ok()) return v.status();
                (k == "tag_lo" ? w.tag_lo : w.tag_hi) = *v;
                return Status::Ok();
              }
              if (k == "faults") return ParseLinkFaults(r, &w.faults);
              return r.Fail("unknown per_tag key '" + k + "'");
            }));
        spec.per_tag.push_back(w);
        return Status::Ok();
      });
    }
    if (key == "crash_rank" || key == "straggler_rank") {
      Result<int> v = ParseInt(r);
      if (!v.ok()) return v.status();
      (key == "crash_rank" ? spec.crash_rank : spec.straggler_rank) = *v;
      return Status::Ok();
    }
    if (key == "crash_after_sends") {
      Result<double> v = r.ParseNumber();
      if (!v.ok()) return v.status();
      spec.crash_after_sends = static_cast<std::uint64_t>(*v);
      return Status::Ok();
    }
    if (key == "straggler_delay_ms") {
      Result<double> v = r.ParseNumber();
      if (!v.ok()) return v.status();
      spec.straggler_delay_ms = *v;
      return Status::Ok();
    }
    return r.Fail("unknown key '" + key + "'");
  });
  if (!st.ok()) return st;
  if (!r.AtEnd()) return r.Fail("trailing content");
  return spec;
}

Status WriteFaultSchedule(const std::string& path, const FaultSpec& spec) {
  std::ofstream out(path);
  if (!out) return Internal("cannot open fault schedule file: " + path);
  out << FaultScheduleToJson(spec);
  out.close();
  if (!out) return Internal("failed writing fault schedule: " + path);
  LOG_INFO << "fault schedule serialized to " << path
                  << " (replay: bench_elastic_recovery --fault-schedule "
                  << path << ")";
  return Status::Ok();
}

Result<FaultSpec> LoadFaultSchedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) return InvalidArgument("cannot read fault schedule file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FaultScheduleFromJson(buf.str());
}

}  // namespace aiacc::transport
