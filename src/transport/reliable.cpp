#include "transport/reliable.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace aiacc::transport {
namespace {

// Frame layout (float lanes). Header values are small non-negative
// integers, each exactly representable as a float.
//   [0] kind   (1 = data, 2 = ack)
//   [1] seq    (data: frame sequence number; ack: acknowledged sequence)
//   [2] crc hi (upper 16 bits of the CRC32)
//   [3] crc lo (lower 16 bits)
//   [4..] body (data frames only)
constexpr std::size_t kHeaderLanes = 4;
constexpr float kKindData = 1.0f;
constexpr float kKindAck = 2.0f;
/// Last exactly float-representable integer; bounds both seq and the
/// 16-bit CRC halves with huge headroom.
constexpr std::uint64_t kMaxSeq = 1ULL << 24;

/// CRC32 (reflected, poly 0xEDB88320) over the frame's kind, seq, and body
/// bytes — the header fields are covered so a corrupted seq lane is
/// detected, not misfiled as a different message.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t CrcUpdate(std::uint32_t crc, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t FrameCrc(float kind, std::uint64_t seq, const float* body,
                       std::size_t body_lanes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  crc = CrcUpdate(crc, &kind, sizeof(kind));
  crc = CrcUpdate(crc, &seq, sizeof(seq));
  crc = CrcUpdate(crc, body, body_lanes * sizeof(float));
  return crc ^ 0xFFFFFFFFu;
}

/// A float lane that must hold a small non-negative integer; nullopt when
/// corruption turned it into anything else (NaN, fraction, out of range).
std::optional<std::uint64_t> IntLane(float v, std::uint64_t limit) {
  if (!std::isfinite(v) || v < 0.0f) return std::nullopt;
  const auto u = static_cast<std::uint64_t>(v);
  if (static_cast<float>(u) != v || u >= limit) return std::nullopt;
  return u;
}

// Process-global telemetry: registered once, then relaxed atomic adds.
telemetry::Counter& RetransmitCounter() {
  static telemetry::Counter* c = &telemetry::MetricsRegistry::Global()
                                      .GetCounter("reliable.retransmits");
  return *c;
}
telemetry::Counter& CrcFailureCounter() {
  static telemetry::Counter* c = &telemetry::MetricsRegistry::Global()
                                      .GetCounter("reliable.crc_failures");
  return *c;
}
telemetry::Counter& DeliveryFailureCounter() {
  static telemetry::Counter* c =
      &telemetry::MetricsRegistry::Global().GetCounter(
          "reliable.delivery_failures");
  return *c;
}
telemetry::Counter& AckCounter() {
  static telemetry::Counter* c =
      &telemetry::MetricsRegistry::Global().GetCounter("reliable.acks");
  return *c;
}

}  // namespace

ReliableTransport::ReliableTransport(Transport& inner, ReliableOptions options)
    : inner_(inner),
      options_(options),
      pool_(options.pool != nullptr ? *options.pool
                                    : common::BufferPool::Global()) {
  AIACC_CHECK(options_.rto_initial_ms > 0);
  AIACC_CHECK(options_.rto_max_ms >= options_.rto_initial_ms);
  AIACC_CHECK(options_.daemon_tick_ms > 0);
  daemon_ = std::thread([this] { DaemonLoop(); });
}

ReliableTransport::~ReliableTransport() {
  stop_.store(true, std::memory_order_release);
  if (daemon_.joinable()) daemon_.join();
  // Hand every retained buffer back to the pool (no-op for an empty run).
  common::MutexLock lock(mu_);
  for (auto& [key, ch] : tx_) {
    for (auto& [seq, frame] : ch.inflight) pool_.Release(std::move(frame.wire));
    ch.inflight.clear();
  }
  for (auto& [key, ch] : rx_) {
    for (auto& [seq, body] : ch.stash) pool_.Release(std::move(body));
    ch.stash.clear();
  }
}

void ReliableTransport::Send(int src, int dst, int tag, Payload payload) {
  const std::size_t body_lanes = payload.size();
  Payload clone;  // the copy that goes onto the wire now
  {
    common::MutexLock lock(mu_);
    TxChannel& ch = tx_[{src, dst, tag}];
    const std::uint64_t seq = ch.next_seq++;
    AIACC_CHECK(seq < kMaxSeq);

    Payload wire = pool_.Acquire(kHeaderLanes + body_lanes);
    const std::uint32_t crc = FrameCrc(kKindData, seq, payload.data(),
                                       body_lanes);
    wire[0] = kKindData;
    wire[1] = static_cast<float>(seq);
    wire[2] = static_cast<float>(crc >> 16);
    wire[3] = static_cast<float>(crc & 0xFFFFu);
    std::copy(payload.begin(), payload.end(), wire.begin() + kHeaderLanes);

    clone = pool_.Acquire(wire.size());
    std::copy(wire.begin(), wire.end(), clone.begin());

    const auto now = std::chrono::steady_clock::now();
    TxFrame& frame = ch.inflight[seq];
    frame.wire = std::move(wire);
    frame.first_sent = now;
    frame.rto_ms = options_.rto_initial_ms;
    frame.next_resend = now + std::chrono::milliseconds(frame.rto_ms);
    ++stats_.data_frames_sent;
  }
  pool_.Release(std::move(payload));
  // Outside the mutex: a fault decorator may sleep inside Send.
  inner_.Send(src, dst, tag, std::move(clone));
}

void ReliableTransport::ProcessRawFrame(
    int rank, int src, int tag, Payload frame,
    std::vector<std::tuple<int, int, int, Payload>>& acks_out) {
  const auto reject = [&](Payload&& p) {
    CrcFailureCounter().Add();
    telemetry::FlightRecorder::Global().Record(
        telemetry::FlightSeverity::kWarn, "transport.reliable", "crc-discard",
        rank, /*channel=*/-1, tag, /*detail0=*/src);
    common::MutexLock lock(mu_);
    ++stats_.crc_failures;
    pool_.Release(std::move(p));
  };
  if (frame.size() < kHeaderLanes) return reject(std::move(frame));
  const float kind = frame[0];
  if (kind != kKindData && kind != kKindAck) return reject(std::move(frame));
  const auto seq = IntLane(frame[1], kMaxSeq);
  const auto crc_hi = IntLane(frame[2], 1ULL << 16);
  const auto crc_lo = IntLane(frame[3], 1ULL << 16);
  if (!seq || !crc_hi || !crc_lo) return reject(std::move(frame));
  const std::size_t body_lanes = frame.size() - kHeaderLanes;
  if (kind == kKindAck && body_lanes != 0) return reject(std::move(frame));
  const auto stored =
      static_cast<std::uint32_t>((*crc_hi << 16) | *crc_lo);
  if (FrameCrc(kind, *seq, frame.data() + kHeaderLanes, body_lanes) !=
      stored) {
    return reject(std::move(frame));
  }

  if (kind == kKindAck) {
    common::MutexLock lock(mu_);
    // An ack arriving at `rank` from `src` acknowledges a frame `rank`
    // sent to `src` on this tag.
    auto it = tx_.find({rank, src, tag});
    if (it != tx_.end()) {
      auto fit = it->second.inflight.find(*seq);
      if (fit != it->second.inflight.end()) {
        pool_.Release(std::move(fit->second.wire));
        it->second.inflight.erase(fit);
      }
    }
    ++stats_.acks_received;
    pool_.Release(std::move(frame));
    return;
  }

  // Data frame: stash in order, ack unconditionally (a lost ack shows up
  // here as a duplicate — the re-ack is what stops its retransmits).
  Payload ack = pool_.Acquire(kHeaderLanes);
  const std::uint32_t ack_crc = FrameCrc(kKindAck, *seq, nullptr, 0);
  ack[0] = kKindAck;
  ack[1] = static_cast<float>(*seq);
  ack[2] = static_cast<float>(ack_crc >> 16);
  ack[3] = static_cast<float>(ack_crc & 0xFFFFu);
  {
    common::MutexLock lock(mu_);
    RxChannel& ch = rx_[{rank, src, tag}];
    if (*seq < ch.expected || ch.stash.count(*seq) != 0) {
      ++stats_.duplicates_discarded;
      pool_.Release(std::move(frame));
    } else {
      Payload body = pool_.Acquire(body_lanes);
      std::copy(frame.begin() + kHeaderLanes, frame.end(), body.begin());
      pool_.Release(std::move(frame));
      ch.stash.emplace(*seq, std::move(body));
    }
    ++stats_.acks_sent;
  }
  AckCounter().Add();
  acks_out.emplace_back(rank, src, tag, std::move(ack));
}

std::optional<Payload> ReliableTransport::TakeExpectedLocked(RxChannel& ch) {
  auto it = ch.stash.find(ch.expected);
  if (it == ch.stash.end()) return std::nullopt;
  Payload body = std::move(it->second);
  ch.stash.erase(it);
  ++ch.expected;
  ++stats_.delivered;
  return body;
}

Result<Payload> ReliableTransport::Recv(int rank, int src, int tag) {
  return RecvFor(rank, src, tag, kNoTimeout);
}

Result<Payload> ReliableTransport::RecvFor(int rank, int src, int tag,
                                           std::chrono::milliseconds timeout) {
  const bool bounded = timeout > kNoTimeout;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Short pull quantum: a frame the daemon stashed just before this
  // consumer registered is picked up at the next stash check. Frames that
  // arrive while we are blocked below wake us immediately via the inner
  // transport's own CV.
  constexpr auto kQuantum = std::chrono::milliseconds(2);
  // While a consumer is pulling this channel the daemon leaves its inner
  // mailbox alone (frames flow to the thread that wants them).
  {
    common::MutexLock lock(mu_);
    ++rx_[{rank, src, tag}].consumers;
  }
  std::vector<std::tuple<int, int, int, Payload>> acks;
  const auto finish = [&](Result<Payload> r) -> Result<Payload> {
    common::MutexLock lock(mu_);
    --rx_[{rank, src, tag}].consumers;
    return r;
  };
  while (true) {
    {
      common::MutexLock lock(mu_);
      RxChannel& ch = rx_[{rank, src, tag}];
      if (auto body = TakeExpectedLocked(ch)) {
        --ch.consumers;
        AIACC_TRACE_INSTANT_V("transport", "recv");
        return *std::move(body);
      }
    }
    if (inner_.IsShutdown()) {
      return finish(Unavailable("reliable transport shut down"));
    }
    auto wait = kQuantum;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::milliseconds::zero()) {
        return finish(DeadlineExceeded(
            "no in-order reliable message from rank " + std::to_string(src) +
            " tag " + std::to_string(tag)));
      }
      wait = std::min(wait, remaining);
    }
    Result<Payload> raw = inner_.RecvFor(rank, src, tag, wait);
    if (raw.ok()) {
      ProcessRawFrame(rank, src, tag, *std::move(raw), acks);
      for (auto& [s, d, t, ack] : acks) inner_.Send(s, d, t, std::move(ack));
      acks.clear();
    } else if (raw.status().code() != StatusCode::kDeadlineExceeded &&
               raw.status().code() != StatusCode::kUnavailable) {
      return finish(raw.status());
    }
    // Quantum expiry / shutdown race: loop re-checks stash and deadline.
  }
}

std::optional<Payload> ReliableTransport::TryRecv(int rank, int src, int tag) {
  std::vector<std::tuple<int, int, int, Payload>> acks;
  while (auto raw = inner_.TryRecv(rank, src, tag)) {
    ProcessRawFrame(rank, src, tag, *std::move(raw), acks);
  }
  for (auto& [s, d, t, ack] : acks) inner_.Send(s, d, t, std::move(ack));
  common::MutexLock lock(mu_);
  RxChannel& ch = rx_[{rank, src, tag}];
  auto body = TakeExpectedLocked(ch);
  if (body) AIACC_TRACE_INSTANT_V("transport", "recv");
  return body;
}

void ReliableTransport::Shutdown() {
  stop_.store(true, std::memory_order_release);
  inner_.Shutdown();
}

ReliableStats ReliableTransport::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

void ReliableTransport::DaemonLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    DaemonTick();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.daemon_tick_ms));
  }
}

void ReliableTransport::DaemonTick() {
  // 1. Drain inner mailboxes no consumer is watching — this is how a pure
  //    sender ever sees its acks (and how early frames of a not-yet-started
  //    receiver get stashed + acked instead of rotting unacknowledged).
  std::vector<ChannelKey> to_poll;
  {
    common::MutexLock lock(mu_);
    for (const auto& [key, ch] : tx_) {
      const auto& [src, dst, tag] = key;
      RxChannel& rx = rx_[{src, dst, tag}];
      if (rx.consumers == 0) to_poll.emplace_back(src, dst, tag);
    }
  }
  std::vector<std::tuple<int, int, int, Payload>> acks;
  for (const auto& [rank, src, tag] : to_poll) {
    while (auto raw = inner_.TryRecv(rank, src, tag)) {
      ProcessRawFrame(rank, src, tag, *std::move(raw), acks);
    }
  }
  for (auto& [s, d, t, ack] : acks) inner_.Send(s, d, t, std::move(ack));

  // 2. Retransmit overdue frames; expire frames past the message deadline.
  std::vector<std::tuple<int, int, int, Payload>> resend;
  std::vector<Payload> expired;
  std::uint64_t expired_count = 0;
  std::uint64_t resent_count = 0;
  {
    common::MutexLock lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (auto& [key, ch] : tx_) {
      const auto& [src, dst, tag] = key;
      for (auto it = ch.inflight.begin(); it != ch.inflight.end();) {
        TxFrame& frame = it->second;
        if (options_.message_deadline_ms > 0 &&
            now - frame.first_sent >= std::chrono::milliseconds(
                                          options_.message_deadline_ms)) {
          telemetry::FlightRecorder::Global().Record(
              telemetry::FlightSeverity::kError, "transport.reliable",
              "delivery-failure", src, /*channel=*/-1, tag,
              /*detail0=*/dst, /*detail1=*/it->first);
          expired.push_back(std::move(frame.wire));
          it = ch.inflight.erase(it);
          ++stats_.delivery_failures;
          ++expired_count;
          continue;
        }
        if (now >= frame.next_resend) {
          Payload clone = pool_.Acquire(frame.wire.size());
          std::copy(frame.wire.begin(), frame.wire.end(), clone.begin());
          resend.emplace_back(src, dst, tag, std::move(clone));
          frame.rto_ms = std::min(frame.rto_ms * 2, options_.rto_max_ms);
          frame.next_resend = now + std::chrono::milliseconds(frame.rto_ms);
          ++stats_.retransmits;
          ++resent_count;
        }
        ++it;
      }
    }
  }
  if (resent_count > 0) RetransmitCounter().Add(resent_count);
  if (expired_count > 0) DeliveryFailureCounter().Add(expired_count);
  for (auto& [s, d, t, clone] : resend) {
    if (inner_.IsShutdown()) {
      pool_.Release(std::move(clone));
      continue;
    }
    inner_.Send(s, d, t, std::move(clone));
  }
  for (Payload& p : expired) pool_.Release(std::move(p));
}

}  // namespace aiacc::transport
