// JSON (de)serialization for FaultSpec — the replay path of the chaos
// layer. A failing chaos test serializes the exact seeded schedule it ran
// (WriteFaultSchedule); the file is uploaded as a CI artifact and can be
// replayed locally with `bench_elastic_recovery --fault-schedule <file>` or
// by pointing any FaultyTransport at LoadFaultSchedule's result. Faults are
// a pure function of (seed, message coordinates), so spec + seed IS the
// schedule — replaying the spec replays every drop/dup/reorder/corrupt
// decision bit-for-bit.
//
// The format is plain JSON, hand-rolled both ways (the repo takes no
// third-party dependencies). The parser accepts exactly what the writer
// emits plus insignificant whitespace and any key order.
#pragma once

#include <string>

#include "common/status.h"
#include "transport/faulty.h"

namespace aiacc::transport {

/// The spec as a JSON document (stable key order, 2-space indent).
[[nodiscard]] std::string FaultScheduleToJson(const FaultSpec& spec);

/// Parse a document produced by FaultScheduleToJson (unknown keys are
/// errors — a typo'd field silently defaulting would un-reproduce the
/// schedule it claims to replay).
[[nodiscard]] Result<FaultSpec> FaultScheduleFromJson(const std::string& json);

/// Write/read a schedule file. WriteFaultSchedule logs the path on success
/// so a failing test's output tells the reader what to replay.
Status WriteFaultSchedule(const std::string& path, const FaultSpec& spec);
[[nodiscard]] Result<FaultSpec> LoadFaultSchedule(const std::string& path);

}  // namespace aiacc::transport
