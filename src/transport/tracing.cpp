#include "transport/tracing.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace aiacc::transport {

namespace {

/// Flow events ride at phase level: they only exist to bind the comm spans
/// the phase level already records, so verbose-only detail never gates
/// them and an off tracer costs one relaxed load.
constexpr telemetry::TraceLevel kFlowLevel = telemetry::TraceLevel::kPhase;

}  // namespace

TracingTransport::TracingTransport(Transport& inner, TracingOptions options)
    : inner_(inner),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? *options_.pool
                                     : common::BufferPool::Global()),
      tracer_(options_.tracer != nullptr
                  ? *options_.tracer
                  : telemetry::RuntimeTracer::Global()),
      clocks_(static_cast<std::size_t>(inner.world_size())),
      next_msg_id_(static_cast<std::size_t>(inner.world_size())) {
  AIACC_CHECK(inner.world_size() >= 1);
}

std::int64_t TracingTransport::PhysicalNow(int rank) const noexcept {
  std::int64_t now = tracer_.NowNs();
  const auto r = static_cast<std::size_t>(rank);
  if (r < options_.rank_skew_ns.size()) now += options_.rank_skew_ns[r];
  return now;
}

void TracingTransport::Send(int src, int dst, int tag, Payload payload) {
  if (!options_.stamp) {
    inner_.Send(src, dst, tag, std::move(payload));
    return;
  }
  telemetry::TraceStamp stamp;
  stamp.origin = src;
  stamp.msg_id = next_msg_id_[static_cast<std::size_t>(src)].fetch_add(
      1, std::memory_order_relaxed);
  stamp.hlc = clocks_[static_cast<std::size_t>(src)].Tick(PhysicalNow(src));
  // Pooled copy with room for the trailer; the body's buffer goes back to
  // the pool, so the steady state recycles both size classes.
  Payload wire = pool_.Acquire(payload.size() + telemetry::kStampLanes);
  std::copy(payload.begin(), payload.end(), wire.begin());
  telemetry::WriteStamp(wire.data() + payload.size(), stamp);
  pool_.Release(std::move(payload));
  stamped_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_.enabled(kFlowLevel)) {
    tracer_.RecordFlow("comm.flow", "msg",
                       telemetry::FlowId(stamp.origin, stamp.msg_id),
                       /*start=*/true);
  }
  inner_.Send(src, dst, tag, std::move(wire));
}

void TracingTransport::Unstamp(int rank, Payload& payload) {
  if (!options_.stamp) return;
  // Stamping is symmetric: every frame on this stack carries a trailer, so
  // a parse failure means corruption reached the trailer (raw chaos mode
  // with no reliable layer below). Strip the lanes regardless — the body
  // must come out at its original size — but only trust parsed stamps.
  if (payload.size() >= telemetry::kStampLanes) {
    const std::optional<telemetry::TraceStamp> stamp =
        telemetry::StripStamp(payload);
    if (stamp.has_value()) {
      clocks_[static_cast<std::size_t>(rank)].Observe(PhysicalNow(rank),
                                                      stamp->hlc);
      stripped_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_.enabled(kFlowLevel)) {
        tracer_.RecordFlow("comm.flow", "msg",
                           telemetry::FlowId(stamp->origin, stamp->msg_id),
                           /*start=*/false);
      }
      return;
    }
    payload.resize(payload.size() - telemetry::kStampLanes);
  }
  parse_failures_.fetch_add(1, std::memory_order_relaxed);
}

Result<Payload> TracingTransport::Recv(int rank, int src, int tag) {
  Result<Payload> result = inner_.Recv(rank, src, tag);
  if (result.ok()) Unstamp(rank, *result);
  return result;
}

Result<Payload> TracingTransport::RecvFor(int rank, int src, int tag,
                                          std::chrono::milliseconds timeout) {
  Result<Payload> result = inner_.RecvFor(rank, src, tag, timeout);
  if (result.ok()) Unstamp(rank, *result);
  return result;
}

std::optional<Payload> TracingTransport::TryRecv(int rank, int src, int tag) {
  std::optional<Payload> payload = inner_.TryRecv(rank, src, tag);
  if (payload.has_value()) Unstamp(rank, *payload);
  return payload;
}

TracingStats TracingTransport::stats() const noexcept {
  TracingStats s;
  s.stamped = stamped_.load(std::memory_order_relaxed);
  s.stripped = stripped_.load(std::memory_order_relaxed);
  s.parse_failures = parse_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aiacc::transport
