// Real multi-threaded in-process transport. Each rank is driven by a caller
// thread (as each GPU worker is driven by its MPI process in the paper);
// Send/Recv match on (source, tag) like MPI point-to-point. Tags multiplex
// logical channels, so one rank pair can run several concurrent
// communication streams — the threaded analogue of the multi-CUDA-stream
// design.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace aiacc::transport {

using Payload = std::vector<float>;

class InProcTransport {
 public:
  explicit InProcTransport(int world_size);
  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  /// Deliver `payload` to `dst`'s mailbox under (src, tag). Never blocks.
  void Send(int src, int dst, int tag, Payload payload);

  /// Block until a message from (src, tag) arrives at `rank`; returns its
  /// payload, or Unavailable after Shutdown().
  Result<Payload> Recv(int rank, int src, int tag);

  /// Wake all blocked receivers with an error (teardown / failure injection).
  void Shutdown();

  /// Simple sense-reversing barrier over all ranks (each rank calls once).
  void Barrier();

  /// Messages delivered so far (all ranks) — used by tests to assert traffic
  /// shapes (e.g. ring all-reduce sends exactly 2(n-1) messages per rank).
  [[nodiscard]] std::uint64_t TotalMessages() const;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // (src, tag) -> FIFO of payloads.
    std::map<std::pair<int, int>, std::deque<Payload>> slots;
  };

  const int world_size_;
  std::vector<Mailbox> mailboxes_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> total_messages_{0};

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_generation_ = 0;
};

}  // namespace aiacc::transport
