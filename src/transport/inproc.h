// Real multi-threaded in-process transport. Each rank is driven by a caller
// thread (as each GPU worker is driven by its MPI process in the paper);
// Send/Recv match on (source, tag) like MPI point-to-point. Tags multiplex
// logical channels, so one rank pair can run several concurrent
// communication streams — the threaded analogue of the multi-CUDA-stream
// design.
//
// `Transport` is the abstract interface the collective layer programs
// against; `InProcTransport` is the reliable in-memory implementation and
// `FaultyTransport` (transport/faulty.h) decorates any Transport with
// seeded fault injection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace aiacc::transport {

using Payload = std::vector<float>;

/// Timeout value meaning "block forever" for RecvFor.
inline constexpr std::chrono::milliseconds kNoTimeout{0};

/// Abstract point-to-point transport: (src, tag)-matched channels between
/// `world_size` ranks, plus a barrier. All methods are thread-safe; one
/// logical channel (rank, src, tag) must have a single consumer thread at a
/// time (MPI-style).
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual int world_size() const noexcept = 0;

  /// Deliver `payload` to `dst`'s mailbox under (src, tag). Never blocks on
  /// the receiver (fault decorators may add sender-side delay).
  virtual void Send(int src, int dst, int tag, Payload payload) = 0;

  /// Block until a message from (src, tag) arrives at `rank`; returns its
  /// payload, or Unavailable after Shutdown().
  virtual Result<Payload> Recv(int rank, int src, int tag) = 0;

  /// Deadline-aware receive: like Recv but returns kDeadlineExceeded if no
  /// message arrives within `timeout`. `timeout <= 0` blocks like Recv.
  /// This is what lets collectives abort instead of hanging when a peer has
  /// crashed or the link is dropping messages.
  virtual Result<Payload> RecvFor(int rank, int src, int tag,
                                  std::chrono::milliseconds timeout) = 0;

  /// Non-blocking receive. Decorators may relax delivery to datagram
  /// semantics on this path (out-of-order arrivals delivered, gaps skipped)
  /// — it is the heartbeat primitive, where freshness beats completeness.
  virtual std::optional<Payload> TryRecv(int rank, int src, int tag) = 0;

  /// Wake all blocked receivers with an error (teardown / failure
  /// handling). Idempotent; the transport stays dead afterwards.
  virtual void Shutdown() = 0;

  [[nodiscard]] virtual bool IsShutdown() const noexcept = 0;

  /// Sense-reversing barrier over all ranks (each rank calls once).
  /// Returns Ok when every rank arrived, or Unavailable when the wait was
  /// cut short by Shutdown() — callers must not treat a failed barrier as
  /// a completed one.
  virtual Status Barrier() = 0;

  /// Messages delivered so far (all ranks) — used by tests to assert traffic
  /// shapes (e.g. ring all-reduce sends exactly 2(n-1) messages per rank).
  [[nodiscard]] virtual std::uint64_t TotalMessages() const = 0;
};

/// Receiver wakeup policy for InProcTransport.
///
/// kTargeted (default): every (src, tag) slot owns its own condition
/// variable, so a Send signals exactly the one receiver that can consume
/// the message. kSharedHerd is the pre-optimization behaviour — one CV per
/// mailbox, `notify_all` on every Send — kept selectable so the hot-path
/// bench (`bench_hotpath`) and regression tests can measure the thundering
/// herd against the targeted protocol on identical workloads.
enum class WakeMode { kTargeted, kSharedHerd };

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int world_size,
                           WakeMode wake_mode = WakeMode::kTargeted);
  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  [[nodiscard]] int world_size() const noexcept override {
    return world_size_;
  }

  void Send(int src, int dst, int tag, Payload payload) override;
  Result<Payload> Recv(int rank, int src, int tag) override;
  Result<Payload> RecvFor(int rank, int src, int tag,
                          std::chrono::milliseconds timeout) override;
  std::optional<Payload> TryRecv(int rank, int src, int tag) override;

  void Shutdown() override;
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return shutdown_.load(std::memory_order_acquire);
  }

  Status Barrier() override;

  [[nodiscard]] std::uint64_t TotalMessages() const override;

  /// Signal/wakeup instrumentation for this transport instance. A futile
  /// wakeup is a blocked receiver that woke and found its slot still empty
  /// — the cost the per-slot CVs eliminate. `receives` counts every message
  /// actually delivered to a consumer, on the blocking (Recv/RecvFor) and
  /// non-blocking (TryRecv) paths alike, so wake-stat ratios stay honest on
  /// heartbeat/Gather-heavy workloads that drain mailboxes with TryRecv.
  struct WakeStats {
    std::uint64_t notifies = 0;        // CV signals sent by senders
    std::uint64_t wakeups = 0;         // blocked receivers woken
    std::uint64_t futile_wakeups = 0;  // woke with nothing to take
    std::uint64_t receives = 0;        // messages delivered to consumers
  };
  [[nodiscard]] WakeStats wake_counters() const noexcept;
  [[nodiscard]] WakeMode wake_mode() const noexcept { return wake_mode_; }

  /// Total float payload bytes accepted by Send so far (all ranks). The
  /// concrete-transport companion to TotalMessages: tests assert traffic
  /// *volume* shapes with it (e.g. bit-packed sync rounds shrink per-round
  /// bytes 32x versus the 0/1-float encoding).
  [[nodiscard]] std::uint64_t TotalPayloadBytes() const noexcept;

 private:
  /// One (src, tag) channel: FIFO of payloads plus that channel's private
  /// CV. Slots live in a node-based map and are never erased, so references
  /// stay valid for the transport's lifetime. Every field is protected by
  /// the owning Mailbox's mu (not expressible as GUARDED_BY across structs).
  struct Slot {
    std::deque<Payload> fifo;
    common::CondVar cv;  // used in WakeMode::kTargeted
  };
  struct Mailbox {
    common::Mutex mu{"inproc-mailbox", common::lock_rank::kMailbox};
    common::CondVar shared_cv;  // used in WakeMode::kSharedHerd
    std::map<std::pair<int, int>, Slot> slots GUARDED_BY(mu);
  };

  /// The slot for (src, tag), created on first use.
  static Slot& SlotFor(Mailbox& box, int src, int tag) REQUIRES(box.mu);
  /// The CV a receiver of `slot` sleeps on under the current wake mode.
  common::CondVar& WaitCv(Mailbox& box, Slot& slot) noexcept {
    return wake_mode_ == WakeMode::kTargeted ? slot.cv : box.shared_cv;
  }

  const int world_size_;
  const WakeMode wake_mode_;
  std::vector<Mailbox> mailboxes_;   // NOLOCK(sized at construction, never resized)
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> futile_wakeups_{0};
  std::atomic<std::uint64_t> receives_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> total_messages_{0};
  std::atomic<std::uint64_t> total_payload_bytes_{0};

  common::Mutex barrier_mu_{"inproc-barrier", common::lock_rank::kMailbox};
  common::CondVar barrier_cv_;
  int barrier_count_ GUARDED_BY(barrier_mu_) = 0;
  int barrier_generation_ GUARDED_BY(barrier_mu_) = 0;
};

}  // namespace aiacc::transport
