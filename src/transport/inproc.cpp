#include "transport/inproc.h"

#include "common/logging.h"
#include "telemetry/tracer.h"

namespace aiacc::transport {

InProcTransport::InProcTransport(int world_size, WakeMode wake_mode)
    : world_size_(world_size),
      wake_mode_(wake_mode),
      mailboxes_(static_cast<std::size_t>(world_size)) {
  AIACC_CHECK(world_size >= 1);
}

InProcTransport::Slot& InProcTransport::SlotFor(Mailbox& box, int src,
                                                int tag) {
  return box.slots[{src, tag}];  // map nodes are stable; never erased
}

void InProcTransport::Send(int src, int dst, int tag, Payload payload) {
  AIACC_CHECK(src >= 0 && src < world_size_);
  AIACC_CHECK(dst >= 0 && dst < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  const std::uint64_t bytes = payload.size() * sizeof(float);
  Slot* slot;
  {
    common::MutexLock lock(box.mu);
    slot = &SlotFor(box, src, tag);
    slot->fifo.push_back(std::move(payload));
  }
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  total_payload_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  notifies_.fetch_add(1, std::memory_order_relaxed);
  AIACC_TRACE_INSTANT_V("transport", "send");
  // Wake-targeted delivery: only the (src, tag) consumer is signalled. The
  // herd mode reproduces the old behaviour — every receiver blocked on this
  // mailbox wakes, rechecks its slot, and all but one go back to sleep.
  if (wake_mode_ == WakeMode::kTargeted) {
    slot->cv.NotifyOne();
  } else {
    box.shared_cv.NotifyAll();
  }
}

Result<Payload> InProcTransport::Recv(int rank, int src, int tag) {
  return RecvFor(rank, src, tag, kNoTimeout);
}

Result<Payload> InProcTransport::RecvFor(int rank, int src, int tag,
                                         std::chrono::milliseconds timeout) {
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  const bool bounded = timeout > kNoTimeout;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  common::MutexLock lock(box.mu);
  Slot& slot = SlotFor(box, src, tag);
  common::CondVar& cv = WaitCv(box, slot);
  while (true) {
    if (!slot.fifo.empty()) {
      Payload payload = std::move(slot.fifo.front());
      slot.fifo.pop_front();
      receives_.fetch_add(1, std::memory_order_relaxed);
      AIACC_TRACE_INSTANT_V("transport", "recv");
      return payload;
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return Unavailable("transport shut down");
    }
    if (bounded) {
      if (cv.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        if (!slot.fifo.empty() ||
            shutdown_.load(std::memory_order_acquire)) {
          continue;  // raced with a delivery/shutdown: resolve at the top
        }
        return DeadlineExceeded("no message from rank " +
                                std::to_string(src) + " tag " +
                                std::to_string(tag) + " within " +
                                std::to_string(timeout.count()) + "ms");
      }
    } else {
      cv.Wait(lock);
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (slot.fifo.empty() && !shutdown_.load(std::memory_order_acquire)) {
      futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
      AIACC_TRACE_INSTANT_V("transport", "futile-wake");
    }
  }
}

std::optional<Payload> InProcTransport::TryRecv(int rank, int src, int tag) {
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  common::MutexLock lock(box.mu);
  auto it = box.slots.find({src, tag});
  if (it == box.slots.end() || it->second.fifo.empty()) return std::nullopt;
  Payload payload = std::move(it->second.fifo.front());
  it->second.fifo.pop_front();
  // Same delivery bookkeeping as the blocking path: TryRecv draining a
  // message is a receive, and traces/wake-stat ratios must see it.
  receives_.fetch_add(1, std::memory_order_relaxed);
  AIACC_TRACE_INSTANT_V("transport", "recv");
  return payload;
}

void InProcTransport::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  // Notify while holding each waiter's mutex: a receiver that evaluated its
  // predicate just before the store above still holds the lock until it
  // actually sleeps, so taking the lock here guarantees the notification
  // cannot fall into that window (the classic lost-wakeup race). Both the
  // per-slot CVs and the shared herd CV are signalled so teardown covers
  // either wake mode.
  for (Mailbox& box : mailboxes_) {
    common::MutexLock lock(box.mu);
    for (auto& [key, slot] : box.slots) slot.cv.NotifyAll();
    box.shared_cv.NotifyAll();
  }
  {
    common::MutexLock lock(barrier_mu_);
    barrier_cv_.NotifyAll();
  }
}

Status InProcTransport::Barrier() {
  common::MutexLock lock(barrier_mu_);
  const int my_generation = barrier_generation_;
  if (++barrier_count_ == world_size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.NotifyAll();
    return Status::Ok();
  }
  while (barrier_generation_ == my_generation &&
         !shutdown_.load(std::memory_order_acquire)) {
    barrier_cv_.Wait(lock);
  }
  if (barrier_generation_ == my_generation) {
    return Unavailable("barrier interrupted by shutdown");
  }
  return Status::Ok();
}

std::uint64_t InProcTransport::TotalMessages() const {
  return total_messages_.load(std::memory_order_relaxed);
}

InProcTransport::WakeStats InProcTransport::wake_counters() const noexcept {
  WakeStats s;
  s.notifies = notifies_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.futile_wakeups = futile_wakeups_.load(std::memory_order_relaxed);
  s.receives = receives_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t InProcTransport::TotalPayloadBytes() const noexcept {
  return total_payload_bytes_.load(std::memory_order_relaxed);
}

}  // namespace aiacc::transport
