#include "transport/inproc.h"

#include "common/logging.h"

namespace aiacc::transport {

InProcTransport::InProcTransport(int world_size)
    : world_size_(world_size), mailboxes_(static_cast<std::size_t>(world_size)) {
  AIACC_CHECK(world_size >= 1);
}

void InProcTransport::Send(int src, int dst, int tag, Payload payload) {
  AIACC_CHECK(src >= 0 && src < world_size_);
  AIACC_CHECK(dst >= 0 && dst < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.slots[{src, tag}].push_back(std::move(payload));
  }
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

std::optional<Payload> InProcTransport::TakeLocked(Mailbox& box, int src,
                                                   int tag) {
  auto it = box.slots.find({src, tag});
  if (it == box.slots.end() || it->second.empty()) return std::nullopt;
  Payload payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

Result<Payload> InProcTransport::Recv(int rank, int src, int tag) {
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    auto it = box.slots.find(key);
    return (it != box.slots.end() && !it->second.empty()) ||
           shutdown_.load(std::memory_order_acquire);
  });
  if (auto payload = TakeLocked(box, src, tag)) return *std::move(payload);
  return Unavailable("transport shut down");
}

Result<Payload> InProcTransport::RecvFor(int rank, int src, int tag,
                                         std::chrono::milliseconds timeout) {
  if (timeout <= kNoTimeout) return Recv(rank, src, tag);
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  const bool woke = box.cv.wait_for(lock, timeout, [&] {
    auto it = box.slots.find(key);
    return (it != box.slots.end() && !it->second.empty()) ||
           shutdown_.load(std::memory_order_acquire);
  });
  if (auto payload = TakeLocked(box, src, tag)) return *std::move(payload);
  if (!woke) {
    return DeadlineExceeded("no message from rank " + std::to_string(src) +
                            " tag " + std::to_string(tag) + " within " +
                            std::to_string(timeout.count()) + "ms");
  }
  return Unavailable("transport shut down");
}

std::optional<Payload> InProcTransport::TryRecv(int rank, int src, int tag) {
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mu);
  return TakeLocked(box, src, tag);
}

void InProcTransport::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  // Notify while holding each waiter's mutex: a receiver that evaluated its
  // predicate just before the store above still holds the lock until it
  // actually sleeps, so taking the lock here guarantees the notification
  // cannot fall into that window (the classic lost-wakeup race).
  for (Mailbox& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

Status InProcTransport::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const int my_generation = barrier_generation_;
  if (++barrier_count_ == world_size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return Status::Ok();
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation ||
           shutdown_.load(std::memory_order_acquire);
  });
  if (barrier_generation_ == my_generation) {
    return Unavailable("barrier interrupted by shutdown");
  }
  return Status::Ok();
}

std::uint64_t InProcTransport::TotalMessages() const {
  return total_messages_.load(std::memory_order_relaxed);
}

}  // namespace aiacc::transport
