#include "transport/inproc.h"

#include "common/logging.h"

namespace aiacc::transport {

InProcTransport::InProcTransport(int world_size)
    : world_size_(world_size), mailboxes_(static_cast<std::size_t>(world_size)) {
  AIACC_CHECK(world_size >= 1);
}

void InProcTransport::Send(int src, int dst, int tag, Payload payload) {
  AIACC_CHECK(src >= 0 && src < world_size_);
  AIACC_CHECK(dst >= 0 && dst < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.slots[{src, tag}].push_back(std::move(payload));
  }
  total_messages_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

Result<Payload> InProcTransport::Recv(int rank, int src, int tag) {
  AIACC_CHECK(rank >= 0 && rank < world_size_);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    auto it = box.slots.find(key);
    return (it != box.slots.end() && !it->second.empty()) ||
           shutdown_.load(std::memory_order_acquire);
  });
  auto it = box.slots.find(key);
  if (it == box.slots.end() || it->second.empty()) {
    return Unavailable("transport shut down");
  }
  Payload payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

void InProcTransport::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (Mailbox& box : mailboxes_) box.cv.notify_all();
  barrier_cv_.notify_all();
}

void InProcTransport::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const int my_generation = barrier_generation_;
  if (++barrier_count_ == world_size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation ||
           shutdown_.load(std::memory_order_acquire);
  });
}

std::uint64_t InProcTransport::TotalMessages() const {
  return total_messages_.load(std::memory_order_relaxed);
}

}  // namespace aiacc::transport
