// Calibration constants for the simulated cloud fabric. These are the only
// "magic numbers" in the network model; everything else is derived. Values
// are chosen to match the paper's measurements on the Alibaba GPU cloud
// (ecs.gn6e instances, §VII-A) and the observations in §III/§V-B:
//
//   * inter-node VPC TCP/IP bandwidth: 30 Gbps per host NIC;
//   * a single TCP communication stream utilizes at most ~30% of that link
//     ("a single communication stream can only utilize at most 30% of the
//      bandwidth provided by the TCP/IP link", §III; NCCL's one link tops out
//      around 10 Gbps of a 30 Gbps NIC, §V-B);
//   * a single RDMA stream (queue pair driven by one CPU-mediated proxy) can
//     be as low as 5-10% of the RDMA link (§III) — we use 10%;
//   * NVLink intra-node bandwidth far exceeds the NIC (V100 NVLink ~150 GB/s
//     per direction aggregated), so intra-node steps are near-free relative
//     to inter-node ones.
#pragma once

#include <cstddef>

namespace aiacc::net {

struct FabricParams {
  /// Host NIC bandwidth in bytes/sec for the TCP/IP (VPC) fabric. 30 Gbps.
  double tcp_nic_bandwidth = 30e9 / 8.0;

  /// Fraction of the NIC a *single* TCP stream can drive (kernel TCP stack,
  /// single connection, single copy pipeline). Paper §III: at most 30%.
  double tcp_single_stream_cap = 0.30;

  /// One-way latency of an inter-node TCP message (propagation + kernel +
  /// VPC overlay overhead). ~50us is typical for intra-AZ VPC RTT/2.
  double tcp_latency = 50e-6;

  /// Per-message fixed CPU/proxy overhead on the sender (connection wakeup,
  /// scatter-gather setup). Dominates for tiny messages such as the gradient
  /// synchronization bit-vector.
  double tcp_per_message_overhead = 15e-6;

  /// Host NIC bandwidth for RDMA-enabled instances (100 Gbps class).
  double rdma_nic_bandwidth = 100e9 / 8.0;

  /// Fraction of the RDMA link a single stream/QP can drive (paper §III:
  /// "as low as 10% to 5% of RDMA"). We use the optimistic end.
  double rdma_single_stream_cap = 0.10;

  /// RDMA one-way latency (microseconds class).
  double rdma_latency = 5e-6;

  /// Per-message overhead for RDMA verbs postings.
  double rdma_per_message_overhead = 2e-6;

  /// Aggregate intra-node NVLink bandwidth between two GPUs, bytes/sec.
  double nvlink_bandwidth = 150e9;

  /// NVLink hop latency.
  double nvlink_latency = 2e-6;

  /// Per-message overhead on NVLink (kernel launch for a copy/reduce).
  double nvlink_per_message_overhead = 3e-6;

  /// PCIe bandwidth for GPU<->CPU staging (TCP path crosses the CPU).
  double pcie_bandwidth = 12e9;
};

}  // namespace aiacc::net
