// Cluster topology description: `num_hosts` computing nodes, each with
// `gpus_per_host` GPUs (8 on the paper's ecs.gn6e instances). GPUs are
// addressed by a global rank in [0, WorldSize()): rank = host * gpus_per_host
// + local index, matching the paper's rank layout where consecutive ranks
// share a node and rings cross the NIC once per node boundary.
#pragma once

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace aiacc::net {

/// Inter-node transport flavour. Intra-node traffic always uses NVLink.
enum class TransportKind : std::uint8_t { kTcp, kRdma };

std::string ToString(TransportKind kind);

struct Topology {
  int num_hosts = 1;
  int gpus_per_host = 8;
  TransportKind inter_node = TransportKind::kTcp;

  [[nodiscard]] int WorldSize() const noexcept {
    return num_hosts * gpus_per_host;
  }
  [[nodiscard]] int HostOfRank(int rank) const noexcept {
    return rank / gpus_per_host;
  }
  [[nodiscard]] int LocalIndexOfRank(int rank) const noexcept {
    return rank % gpus_per_host;
  }
  [[nodiscard]] bool SameHost(int a, int b) const noexcept {
    return HostOfRank(a) == HostOfRank(b);
  }
  [[nodiscard]] bool IsMultiNode() const noexcept { return num_hosts > 1; }

  void Validate() const {
    AIACC_CHECK(num_hosts >= 1);
    AIACC_CHECK(gpus_per_host >= 1);
  }

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Topology&, const Topology&) = default;
};

}  // namespace aiacc::net
