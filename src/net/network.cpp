#include "net/network.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace aiacc::net {
namespace {
// Flows within a byte of done are finished (guards float accumulation drift).
constexpr double kByteEpsilon = 1.0;
}  // namespace

LinkIndex Network::AddLink(std::string name, double capacity) {
  AIACC_CHECK(capacity > 0.0);
  links_.push_back(Link{std::move(name), capacity, {}});
  return static_cast<LinkIndex>(links_.size() - 1);
}

double Network::AverageUtilization(LinkIndex l, double t0, double t1) const {
  AIACC_CHECK(t1 > t0);
  const Link& link = links_[static_cast<std::size_t>(l)];
  return link.stats.busy_integral / ((t1 - t0) * link.capacity);
}

FlowId Network::StartFlow(FlowSpec spec) {
  AIACC_CHECK(spec.bytes >= 0.0);
  AIACC_CHECK(spec.rate_cap > 0.0);
  const FlowId id = next_flow_id_++;
  Flow flow{id, std::move(spec.path), spec.bytes, spec.rate_cap, 0.0,
            std::move(spec.on_complete)};
  for (LinkIndex l : flow.path) {
    AIACC_CHECK(l >= 0 && l < NumLinks());
  }
  if (spec.start_delay > 0.0) {
    engine_.ScheduleAfter(spec.start_delay,
                          [this, f = std::move(flow)]() mutable {
                            ActivateFlow(std::move(f));
                          });
  } else {
    ActivateFlow(std::move(flow));
  }
  return id;
}

void Network::ActivateFlow(Flow flow) {
  if (flow.remaining <= kByteEpsilon) {
    // Zero/near-zero payload: deliver immediately after the start delay.
    if (flow.on_complete) flow.on_complete();
    return;
  }
  Settle();
  active_index_[flow.id] = active_.size();
  active_.push_back(std::move(flow));
  Reflow();
}

bool Network::CancelFlow(FlowId id) {
  auto it = active_index_.find(id);
  if (it == active_index_.end()) return false;
  Settle();
  const std::size_t slot = it->second;
  // Swap-remove and fix the moved flow's index.
  active_[slot] = std::move(active_.back());
  active_.pop_back();
  active_index_.erase(it);
  if (slot < active_.size()) active_index_[active_[slot].id] = slot;
  Reflow();
  return true;
}

void Network::SetLinkCapacity(LinkIndex l, double capacity) {
  AIACC_CHECK(l >= 0 && l < NumLinks());
  AIACC_CHECK(capacity > 0.0);
  Settle();
  links_[static_cast<std::size_t>(l)].capacity = capacity;
  Reflow();
}

void Network::ScheduleDegradation(LinkIndex l, double after, double duration,
                                  double factor) {
  AIACC_CHECK(l >= 0 && l < NumLinks());
  AIACC_CHECK(after >= 0.0);
  AIACC_CHECK(duration > 0.0);
  AIACC_CHECK(factor > 0.0);
  engine_.ScheduleAfter(after, [this, l, duration, factor] {
    SetLinkCapacity(l, LinkCapacity(l) * factor);
    engine_.ScheduleAfter(duration, [this, l, factor] {
      SetLinkCapacity(l, LinkCapacity(l) / factor);
    });
  });
}

double Network::FlowRate(FlowId id) const {
  auto it = active_index_.find(id);
  return it == active_index_.end() ? 0.0 : active_[it->second].rate;
}

void Network::Settle() {
  const double now = engine_.Now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (Flow& flow : active_) {
      const double moved = flow.rate * dt;
      flow.remaining = std::max(0.0, flow.remaining - moved);
      for (LinkIndex l : flow.path) {
        Link& link = links_[static_cast<std::size_t>(l)];
        link.stats.bytes_carried += moved;
        link.stats.busy_integral += flow.rate * dt;
      }
    }
  }
  last_update_ = now;
}

void Network::ComputeRates() {
  // Progressive filling with per-flow caps:
  //   1. every unfixed flow whose cap is below the tightest fair share it
  //      could get is fixed at its cap;
  //   2. otherwise the most-contended link saturates and its flows are fixed
  //      at the fair share.
  // Each round fixes at least one flow, so this terminates in <= |F| rounds.
  const std::size_t n = active_.size();
  if (n == 0) return;

  std::vector<double> residual(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    residual[i] = links_[i].capacity;
  }
  std::vector<int> unfixed_on_link(links_.size(), 0);
  std::vector<bool> fixed(n, false);
  for (const Flow& flow : active_) {
    for (LinkIndex l : flow.path) ++unfixed_on_link[static_cast<std::size_t>(l)];
  }

  std::size_t n_fixed = 0;
  while (n_fixed < n) {
    // Tightest per-link fair share among links with unfixed flows.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (unfixed_on_link[l] > 0) {
        share = std::min(share, residual[l] / unfixed_on_link[l]);
      }
    }
    AIACC_CHECK(share < std::numeric_limits<double>::infinity());

    // Fix cap-limited flows first (cap <= the share they would receive).
    bool fixed_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      if (active_[i].rate_cap <= share) {
        active_[i].rate = active_[i].rate_cap;
        fixed[i] = true;
        ++n_fixed;
        fixed_any = true;
        for (LinkIndex l : active_[i].path) {
          residual[static_cast<std::size_t>(l)] -= active_[i].rate;
          --unfixed_on_link[static_cast<std::size_t>(l)];
        }
      }
    }
    if (fixed_any) continue;

    // No cap binds: saturate the bottleneck link(s) at `share`. Snapshot the
    // bottleneck set before fixing flows — fixing mutates residuals.
    std::vector<bool> is_bottleneck(links_.size(), false);
    for (std::size_t l = 0; l < links_.size(); ++l) {
      is_bottleneck[l] = unfixed_on_link[l] > 0 &&
                         residual[l] / unfixed_on_link[l] <=
                             share * (1.0 + 1e-12);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      bool on_bottleneck = false;
      for (LinkIndex l : active_[i].path) {
        if (is_bottleneck[static_cast<std::size_t>(l)]) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      active_[i].rate = share;
      fixed[i] = true;
      ++n_fixed;
      for (LinkIndex l : active_[i].path) {
        residual[static_cast<std::size_t>(l)] -= share;
        --unfixed_on_link[static_cast<std::size_t>(l)];
      }
    }
  }
}

void Network::Reflow() {
  if (completion_event_ != 0) {
    engine_.Cancel(completion_event_);
    completion_event_ = 0;
  }
  if (active_.empty()) return;

  ComputeRates();

  double earliest = std::numeric_limits<double>::infinity();
  for (const Flow& flow : active_) {
    AIACC_CHECK(flow.rate > 0.0);
    earliest = std::min(earliest, flow.remaining / flow.rate);
  }
  completion_event_ = engine_.ScheduleAfter(
      std::max(0.0, earliest), [this] { OnCompletionEvent(); });
}

void Network::OnCompletionEvent() {
  completion_event_ = 0;
  Settle();

  // Collect finished flows, then run callbacks after the active set is
  // consistent (callbacks commonly start follow-up flows).
  std::vector<std::function<void()>> callbacks;
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].remaining <= kByteEpsilon) {
      if (active_[i].on_complete) {
        callbacks.push_back(std::move(active_[i].on_complete));
      }
      active_index_.erase(active_[i].id);
      active_[i] = std::move(active_.back());
      active_.pop_back();
      if (i < active_.size()) active_index_[active_[i].id] = i;
    } else {
      ++i;
    }
  }
  Reflow();
  for (auto& cb : callbacks) cb();
}

}  // namespace aiacc::net
