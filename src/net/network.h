// Flow-level network simulator.
//
// A Flow moves `bytes` across every link on its path simultaneously (fluid
// approximation of a pipelined transfer or of a ring that loads all NICs
// equally). At any instant the set of active flows shares link capacity by
// progressive-filling max-min fairness, with one extra constraint that is the
// crux of this paper's reproduction: every flow carries a `rate_cap` — the
// maximum rate a single communication stream can sustain regardless of free
// link capacity (TCP single-stream ceiling, §III). N concurrent streams
// therefore achieve min(N * cap, link_bw), which is exactly the utilization
// behaviour AIACC-Training exploits.
//
// Rates are recomputed whenever the active-flow set changes; between changes
// flows progress linearly, so the earliest completion is exact and the whole
// simulation is event-driven and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"

namespace aiacc::net {

using LinkIndex = int;
using FlowId = std::uint64_t;

struct LinkStats {
  double bytes_carried = 0.0;   // total payload bytes moved through the link
  double busy_integral = 0.0;   // integral of utilized rate over time
};

class Network {
 public:
  explicit Network(sim::Engine& engine) : engine_(engine) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a link with `capacity` bytes/sec. Returns its index.
  LinkIndex AddLink(std::string name, double capacity);

  [[nodiscard]] int NumLinks() const noexcept {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] double LinkCapacity(LinkIndex l) const {
    return links_[static_cast<std::size_t>(l)].capacity;
  }
  [[nodiscard]] const std::string& LinkName(LinkIndex l) const {
    return links_[static_cast<std::size_t>(l)].name;
  }
  [[nodiscard]] const LinkStats& Stats(LinkIndex l) const {
    return links_[static_cast<std::size_t>(l)].stats;
  }

  /// Average utilization of the link over [t0, t1] (fractions of capacity).
  [[nodiscard]] double AverageUtilization(LinkIndex l, double t0,
                                          double t1) const;

  struct FlowSpec {
    std::vector<LinkIndex> path;  // deduplicated by caller
    double bytes = 0.0;
    /// Max rate of this flow in bytes/sec (single-stream cap). Use
    /// kUncapped for flows representing many parallel connections.
    double rate_cap = 0.0;
    /// Fixed delay before the fluid transfer begins (latency + per-message
    /// overheads, including any serialized pipeline-fill term).
    double start_delay = 0.0;
    std::function<void()> on_complete;
  };

  static constexpr double kUncapped = 1e30;

  /// Start a flow; `on_complete` fires on the simulation engine when the last
  /// byte arrives. Zero-byte flows complete after `start_delay`.
  FlowId StartFlow(FlowSpec spec);

  /// Abort an in-flight flow (used by failure injection). The completion
  /// callback is dropped. Returns false if already finished.
  bool CancelFlow(FlowId id);

  [[nodiscard]] std::size_t ActiveFlows() const noexcept {
    return active_.size();
  }

  /// Instantaneous rate of a flow; 0 if unknown/finished.
  [[nodiscard]] double FlowRate(FlowId id) const;

  /// Change a link's capacity immediately: in-flight flows keep the bytes
  /// they moved so far and their rates are recomputed under the new
  /// capacity. The gray-failure primitive (and elastic re-provisioning).
  void SetLinkCapacity(LinkIndex l, double capacity);

  /// Schedule a bandwidth degradation window ("link flap", §IV gray
  /// failures): `after` seconds from now the link's capacity is multiplied
  /// by `factor` (0 < factor), and `duration` seconds later divided back.
  /// Multiplicative, so overlapping windows compose.
  void ScheduleDegradation(LinkIndex l, double after, double duration,
                           double factor);

 private:
  struct Link {
    std::string name;
    double capacity;
    LinkStats stats;
  };

  struct Flow {
    FlowId id;
    std::vector<LinkIndex> path;
    double remaining;
    double rate_cap;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Advance all active flows from last_update_ to Now() at current rates.
  void Settle();
  /// Recompute max-min fair rates and (re)schedule the next completion event.
  void Reflow();
  void ComputeRates();
  void OnCompletionEvent();
  void ActivateFlow(Flow flow);

  sim::Engine& engine_;
  std::vector<Link> links_;
  std::vector<Flow> active_;
  std::unordered_map<FlowId, std::size_t> active_index_;  // id -> slot
  FlowId next_flow_id_ = 1;
  double last_update_ = 0.0;
  sim::EventId completion_event_ = 0;
};

}  // namespace aiacc::net
