// CloudFabric: instantiates the link graph for a Topology on a Network and
// provides the path/cap/latency bookkeeping the collective layer needs.
//
// Link graph (fluid model):
//   * per host: one NIC egress link and one NIC ingress link (the inter-node
//     switch fabric is assumed non-blocking, as in a cloud Clos network);
//   * per host: one shared NVLink fabric link for intra-node traffic.
//
// A point-to-point transfer src->dst loads [egress(src_host), ingress(dst
// host)] when the hosts differ, or [nvlink(host)] otherwise. A ring spanning
// every host loads all egress+ingress links simultaneously (each node
// boundary crosses exactly one NIC).
#pragma once

#include <functional>
#include <vector>

#include "net/network.h"
#include "net/params.h"
#include "net/topology.h"
#include "sim/engine.h"

namespace aiacc::net {

class CloudFabric {
 public:
  CloudFabric(sim::Engine& engine, Topology topology, FabricParams params);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FabricParams& params() const noexcept { return params_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  [[nodiscard]] LinkIndex EgressLink(int host) const {
    return egress_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] LinkIndex IngressLink(int host) const {
    return ingress_[static_cast<std::size_t>(host)];
  }
  [[nodiscard]] LinkIndex NvlinkLink(int host) const {
    return nvlink_[static_cast<std::size_t>(host)];
  }
  /// GPU<->CPU staging (PCIe) — used by parameter-server baselines that
  /// aggregate on the host CPU.
  [[nodiscard]] LinkIndex PcieLink(int host) const {
    return pcie_[static_cast<std::size_t>(host)];
  }

  /// Inter-node NIC capacity in bytes/sec for this fabric's transport.
  [[nodiscard]] double NicBandwidth() const noexcept;
  /// Absolute single-stream rate cap (bytes/sec) on the inter-node links.
  [[nodiscard]] double InterNodeStreamCap() const noexcept;
  /// One-way latency + fixed per-message overhead on the inter-node links.
  [[nodiscard]] double InterNodeHopCost() const noexcept;
  /// Same for the intra-node NVLink fabric.
  [[nodiscard]] double NvlinkHopCost() const noexcept;

  /// Path for a point-to-point transfer between two global ranks.
  [[nodiscard]] std::vector<LinkIndex> PathBetween(int src_rank,
                                                   int dst_rank) const;

  /// Path loading every NIC (a flat ring across all hosts). Includes each
  /// host's NVLink fabric as well, which matters only when NVLink could
  /// bottleneck (it doesn't at paper scales, but keep the model honest).
  [[nodiscard]] std::vector<LinkIndex> AllHostsRingPath() const;

  /// Path for an intra-node ring on one host.
  [[nodiscard]] std::vector<LinkIndex> IntraNodeRingPath(int host) const;

  /// Convenience point-to-point message: completes after hop latency +
  /// per-message overhead + serialized transfer at the single-stream cap.
  void SendMessage(int src_rank, int dst_rank, double bytes,
                   std::function<void()> on_delivered);

 private:
  sim::Engine& engine_;
  Topology topology_;
  FabricParams params_;
  Network network_;
  std::vector<LinkIndex> egress_;
  std::vector<LinkIndex> ingress_;
  std::vector<LinkIndex> nvlink_;
  std::vector<LinkIndex> pcie_;
};

}  // namespace aiacc::net
