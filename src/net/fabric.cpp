#include "net/fabric.h"

#include <string>

namespace aiacc::net {

CloudFabric::CloudFabric(sim::Engine& engine, Topology topology,
                         FabricParams params)
    : engine_(engine),
      topology_(topology),
      params_(params),
      network_(engine) {
  topology_.Validate();
  const double nic_bw = NicBandwidth();
  egress_.reserve(static_cast<std::size_t>(topology_.num_hosts));
  ingress_.reserve(static_cast<std::size_t>(topology_.num_hosts));
  nvlink_.reserve(static_cast<std::size_t>(topology_.num_hosts));
  for (int h = 0; h < topology_.num_hosts; ++h) {
    egress_.push_back(
        network_.AddLink("host" + std::to_string(h) + ".egress", nic_bw));
    ingress_.push_back(
        network_.AddLink("host" + std::to_string(h) + ".ingress", nic_bw));
    nvlink_.push_back(network_.AddLink("host" + std::to_string(h) + ".nvlink",
                                       params_.nvlink_bandwidth));
    pcie_.push_back(network_.AddLink("host" + std::to_string(h) + ".pcie",
                                     params_.pcie_bandwidth));
  }
}

double CloudFabric::NicBandwidth() const noexcept {
  return topology_.inter_node == TransportKind::kTcp
             ? params_.tcp_nic_bandwidth
             : params_.rdma_nic_bandwidth;
}

double CloudFabric::InterNodeStreamCap() const noexcept {
  return topology_.inter_node == TransportKind::kTcp
             ? params_.tcp_single_stream_cap * params_.tcp_nic_bandwidth
             : params_.rdma_single_stream_cap * params_.rdma_nic_bandwidth;
}

double CloudFabric::InterNodeHopCost() const noexcept {
  return topology_.inter_node == TransportKind::kTcp
             ? params_.tcp_latency + params_.tcp_per_message_overhead
             : params_.rdma_latency + params_.rdma_per_message_overhead;
}

double CloudFabric::NvlinkHopCost() const noexcept {
  return params_.nvlink_latency + params_.nvlink_per_message_overhead;
}

std::vector<LinkIndex> CloudFabric::PathBetween(int src_rank,
                                                int dst_rank) const {
  const int sh = topology_.HostOfRank(src_rank);
  const int dh = topology_.HostOfRank(dst_rank);
  if (sh == dh) return {NvlinkLink(sh)};
  return {EgressLink(sh), IngressLink(dh)};
}

std::vector<LinkIndex> CloudFabric::AllHostsRingPath() const {
  std::vector<LinkIndex> path;
  path.reserve(static_cast<std::size_t>(topology_.num_hosts) * 3);
  for (int h = 0; h < topology_.num_hosts; ++h) {
    if (topology_.num_hosts > 1) {
      path.push_back(EgressLink(h));
      path.push_back(IngressLink(h));
    }
    if (topology_.gpus_per_host > 1) path.push_back(NvlinkLink(h));
  }
  if (path.empty()) path.push_back(NvlinkLink(0));  // single GPU: degenerate
  return path;
}

std::vector<LinkIndex> CloudFabric::IntraNodeRingPath(int host) const {
  return {NvlinkLink(host)};
}

void CloudFabric::SendMessage(int src_rank, int dst_rank, double bytes,
                              std::function<void()> on_delivered) {
  const bool local = topology_.SameHost(src_rank, dst_rank);
  Network::FlowSpec spec;
  spec.path = PathBetween(src_rank, dst_rank);
  spec.bytes = bytes;
  spec.rate_cap = local ? params_.nvlink_bandwidth : InterNodeStreamCap();
  spec.start_delay = local ? NvlinkHopCost() : InterNodeHopCost();
  spec.on_complete = std::move(on_delivered);
  network_.StartFlow(std::move(spec));
}

}  // namespace aiacc::net
