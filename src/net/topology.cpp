#include "net/topology.h"

#include <sstream>

namespace aiacc::net {

std::string ToString(TransportKind kind) {
  return kind == TransportKind::kTcp ? "TCP" : "RDMA";
}

std::string Topology::ToString() const {
  std::ostringstream out;
  out << num_hosts << " host(s) x " << gpus_per_host << " GPU(s), inter-node "
      << net::ToString(inter_node);
  return out.str();
}

}  // namespace aiacc::net
