#include "porting/translator.h"

#include <cctype>
#include <sstream>

namespace aiacc::porting {
namespace {

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Indentation(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(0, i);
}

std::string Trimmed(const std::string& line) {
  const std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = line.find_last_not_of(" \t\r");
  return line.substr(b, e - b + 1);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Replace every occurrence of `from` with `to`; returns the count.
int ReplaceAll(std::string& s, const std::string& from, const std::string& to) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
    ++count;
  }
  return count;
}

/// "lr=0.1" -> "lr=0.1 * perseus.size()" inside an optimizer constructor.
bool ScaleLearningRate(std::string& line) {
  const std::size_t lr = line.find("lr=");
  if (lr == std::string::npos) return false;
  // Find the end of the numeric literal after "lr=".
  std::size_t end = lr + 3;
  while (end < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[end])) ||
          line[end] == '.' || line[end] == 'e' || line[end] == 'E' ||
          line[end] == '-' || line[end] == '+')) {
    ++end;
  }
  if (end == lr + 3) return false;  // not a literal (e.g. lr=args.lr)
  if (Contains(line, "perseus.size()")) return false;  // already scaled
  line.insert(end, " * perseus.size()");
  return true;
}

}  // namespace

std::string ToString(Edit::Kind kind) {
  switch (kind) {
    case Edit::Kind::kImportSwap: return "import-swap";
    case Edit::Kind::kInsertInit: return "insert-init";
    case Edit::Kind::kWrapOptimizer: return "wrap-optimizer";
    case Edit::Kind::kScaleLearningRate: return "scale-learning-rate";
    case Edit::Kind::kShardDataLoader: return "shard-data-loader";
    case Edit::Kind::kBroadcastParams: return "broadcast-parameters";
    case Edit::Kind::kGuardCheckpoint: return "guard-checkpoint";
  }
  return "?";
}

TranslationResult PortHorovodScript(const std::string& source) {
  TranslationResult result;
  if (Contains(source, "import perseus")) {
    result.already_ported = true;
    result.source = source;
    return result;
  }
  std::vector<std::string> lines = SplitLines(source);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string& line = lines[i];
    const std::string trimmed = Trimmed(line);
    // "import horovod.torch as hvd" -> "import perseus.torch as hvd":
    // the user's alias (`hvd`) is preserved so no other line changes —
    // the paper's one-line port.
    if (StartsWith(trimmed, "import horovod") ||
        StartsWith(trimmed, "from horovod")) {
      const int swapped = ReplaceAll(line, "horovod", "perseus");
      if (swapped > 0) {
        result.edits.push_back(
            Edit{static_cast<int>(i + 1), Edit::Kind::kImportSwap,
                 "swapped horovod import for perseus (alias preserved)"});
      }
    }
  }
  result.source = JoinLines(lines);
  return result;
}

TranslationResult PortSequentialScript(const std::string& source) {
  TranslationResult result;
  if (Contains(source, "import perseus") || Contains(source, "perseus.init")) {
    result.already_ported = true;
    result.source = source;
    return result;
  }

  const std::vector<std::string> in = SplitLines(source);
  std::vector<std::string> out;
  out.reserve(in.size() + 8);

  // Pass 1: locate the last top-level import to anchor the init insertion.
  std::size_t last_import = 0;
  bool has_import = false;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::string t = Trimmed(in[i]);
    if (Indentation(in[i]).empty() &&
        (StartsWith(t, "import ") || StartsWith(t, "from "))) {
      last_import = i;
      has_import = true;
    }
  }

  bool wrapped_optimizer = false;
  bool broadcast_inserted = false;

  for (std::size_t i = 0; i < in.size(); ++i) {
    std::string line = in[i];
    const std::string trimmed = Trimmed(line);
    const std::string indent = Indentation(line);
    const int lineno = static_cast<int>(i + 1);

    // Guard checkpoint writes to rank 0 (every worker writing the same file
    // is a classic porting bug the tool prevents).
    if (StartsWith(trimmed, "torch.save(")) {
      out.push_back(indent + "if perseus.rank() == 0:");
      out.push_back(indent + "    " + trimmed);
      result.edits.push_back(Edit{lineno, Edit::Kind::kGuardCheckpoint,
                                  "checkpoint write restricted to rank 0"});
      continue;
    }

    // Shard the data loader: add a distributed sampler argument.
    if (Contains(line, "DataLoader(") && !Contains(line, "sampler=")) {
      const std::size_t close = line.rfind(')');
      if (close != std::string::npos) {
        // "DataLoader(dataset, ...)" -> first argument names the dataset.
        const std::size_t open = line.find("DataLoader(") + 11;
        std::size_t arg_end = open;
        while (arg_end < line.size() && line[arg_end] != ',' &&
               line[arg_end] != ')') {
          ++arg_end;
        }
        const std::string dataset = line.substr(open, arg_end - open);
        line.insert(close, ", sampler=perseus.DistributedSampler(" + dataset +
                               ", num_replicas=perseus.size(), "
                               "rank=perseus.rank())");
        result.edits.push_back(Edit{lineno, Edit::Kind::kShardDataLoader,
                                    "data loader shards via "
                                    "DistributedSampler"});
      }
    }

    // Wrap the optimizer and scale the learning rate by world size.
    if (!wrapped_optimizer && StartsWith(trimmed, "optimizer =")) {
      if (ScaleLearningRate(line)) {
        result.edits.push_back(Edit{lineno, Edit::Kind::kScaleLearningRate,
                                    "learning rate scaled by perseus.size()"});
      }
      out.push_back(line);
      out.push_back(indent +
                    "optimizer = perseus.DistributedOptimizer(optimizer)");
      result.edits.push_back(Edit{lineno, Edit::Kind::kWrapOptimizer,
                                  "optimizer wrapped for multi-streamed "
                                  "gradient aggregation"});
      wrapped_optimizer = true;
      continue;
    }

    out.push_back(line);

    // Insert init right after the import block.
    if (has_import && i == last_import) {
      out.push_back("import perseus.torch as perseus");
      out.push_back("");
      out.push_back("perseus.init()");
      result.edits.push_back(Edit{lineno, Edit::Kind::kInsertInit,
                                  "perseus imported and initialized"});
    }

    // Broadcast initial parameters right after the model is constructed.
    if (!broadcast_inserted && StartsWith(trimmed, "model =")) {
      out.push_back(indent +
                    "perseus.broadcast_parameters(model.state_dict(), "
                    "root_rank=0)");
      result.edits.push_back(Edit{lineno, Edit::Kind::kBroadcastParams,
                                  "initial parameters broadcast from rank 0"});
      broadcast_inserted = true;
    }
  }

  result.source = JoinLines(out);
  return result;
}

}  // namespace aiacc::porting
