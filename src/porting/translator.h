// Source-to-source porting tool (paper §IV "Programming interface"):
// AIACC-Training converts user training scripts to its Perseus API with
// zero user involvement. Two entry points mirror the paper's two paths:
//
//   * PortHorovodScript  — an existing Horovod program ports by swapping
//     the import package ("just changing one line of the code", §IV);
//   * PortSequentialScript — a vanilla single-GPU PyTorch-style script is
//     rewritten into a distributed one: initialize Perseus, shard the data
//     loader, wrap the optimizer (scaling the learning rate by world size),
//     broadcast initial parameters, and guard checkpoint writes to rank 0.
//
// The translator is line-based and conservative: it only rewrites patterns
// it fully recognizes, and reports every edit so the user can audit the
// result. Idempotent: porting an already-ported script is a no-op.
#pragma once

#include <string>
#include <vector>

namespace aiacc::porting {

struct Edit {
  int line = 0;  // 1-based line in the *input* source
  enum class Kind {
    kImportSwap,       // horovod -> perseus import
    kInsertInit,       // perseus.init()
    kWrapOptimizer,    // optimizer = perseus.DistributedOptimizer(...)
    kScaleLearningRate,
    kShardDataLoader,  // sampler=perseus.DistributedSampler(...)
    kBroadcastParams,  // perseus.broadcast_parameters(...)
    kGuardCheckpoint,  // if perseus.rank() == 0:
  };
  Kind kind;
  std::string description;
};

std::string ToString(Edit::Kind kind);

struct TranslationResult {
  std::string source;        // rewritten script
  std::vector<Edit> edits;
  /// True when the input already used Perseus (nothing to do).
  bool already_ported = false;
};

/// Horovod -> Perseus: swap the import package, keep the user's alias so the
/// rest of the program is untouched.
TranslationResult PortHorovodScript(const std::string& source);

/// Sequential single-GPU script -> Perseus distributed data parallelism.
TranslationResult PortSequentialScript(const std::string& source);

}  // namespace aiacc::porting
