#include "dnn/mlp.h"

#include <cmath>

#include "common/logging.h"

namespace aiacc::dnn {

Mlp::Mlp(std::vector<int> layer_sizes, std::uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)) {
  AIACC_CHECK(layer_sizes_.size() >= 2);
  Rng rng(seed);
  const std::size_t n_layers = layer_sizes_.size() - 1;
  weights_.resize(n_layers);
  biases_.resize(n_layers);
  grad_weights_.resize(n_layers);
  grad_biases_.resize(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    weights_[l].resize(static_cast<std::size_t>(in) * out);
    // Xavier-ish init, deterministic.
    const double scale = std::sqrt(2.0 / (in + out));
    for (float& w : weights_[l]) {
      w = static_cast<float>(rng.Normal(0.0, scale));
    }
    biases_[l].assign(static_cast<std::size_t>(out), 0.0f);
    grad_weights_[l].assign(weights_[l].size(), 0.0f);
    grad_biases_[l].assign(biases_[l].size(), 0.0f);
  }
}

std::size_t Mlp::NumParameters() const noexcept {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

std::vector<std::span<float>> Mlp::ParameterTensors() {
  std::vector<std::span<float>> out;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    out.emplace_back(weights_[l]);
    out.emplace_back(biases_[l]);
  }
  return out;
}

std::vector<std::span<float>> Mlp::GradientTensors() {
  std::vector<std::span<float>> out;
  for (std::size_t l = 0; l < grad_weights_.size(); ++l) {
    out.emplace_back(grad_weights_[l]);
    out.emplace_back(grad_biases_[l]);
  }
  return out;
}

std::vector<float> Mlp::Forward(std::span<const float> x, int batch) {
  const std::size_t n_layers = weights_.size();
  activations_.assign(n_layers + 1, {});
  activations_[0].assign(x.begin(), x.end());
  for (std::size_t l = 0; l < n_layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    std::vector<float>& act = activations_[l + 1];
    act.assign(static_cast<std::size_t>(batch) * out, 0.0f);
    const std::vector<float>& prev = activations_[l];
    for (int b = 0; b < batch; ++b) {
      for (int o = 0; o < out; ++o) {
        double sum = biases_[l][static_cast<std::size_t>(o)];
        const float* w_row = &weights_[l][static_cast<std::size_t>(o) * in];
        const float* x_row = &prev[static_cast<std::size_t>(b) * in];
        for (int i = 0; i < in; ++i) sum += double{w_row[i]} * x_row[i];
        // tanh on hidden layers, identity on the output layer.
        const bool last = (l + 1 == n_layers);
        act[static_cast<std::size_t>(b) * out + o] =
            last ? static_cast<float>(sum)
                 : static_cast<float>(std::tanh(sum));
      }
    }
  }
  return activations_.back();
}

float Mlp::MseLoss(std::span<const float> pred, std::span<const float> target) {
  AIACC_CHECK(pred.size() == target.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = double{pred[i]} - target[i];
    sum += d * d;
  }
  return static_cast<float>(sum / static_cast<double>(pred.size()));
}

void Mlp::Backward(std::span<const float> x, std::span<const float> target,
                   int batch) {
  (void)x;  // activations_[0] already holds the inputs from Forward.
  const std::size_t n_layers = weights_.size();
  AIACC_CHECK(activations_.size() == n_layers + 1);
  const int out_size = layer_sizes_.back();
  AIACC_CHECK(target.size() ==
              static_cast<std::size_t>(batch) * out_size);

  // dLoss/dPred for MSE averaged over batch*out elements.
  std::vector<float> delta(static_cast<std::size_t>(batch) * out_size);
  const float inv_n = 2.0f / static_cast<float>(delta.size());
  const std::vector<float>& pred = activations_.back();
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = inv_n * (pred[i] - target[i]);
  }

  for (std::size_t l = n_layers; l-- > 0;) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    const std::vector<float>& prev = activations_[l];
    // Parameter gradients.
    std::fill(grad_weights_[l].begin(), grad_weights_[l].end(), 0.0f);
    std::fill(grad_biases_[l].begin(), grad_biases_[l].end(), 0.0f);
    for (int b = 0; b < batch; ++b) {
      for (int o = 0; o < out; ++o) {
        const float d = delta[static_cast<std::size_t>(b) * out + o];
        grad_biases_[l][static_cast<std::size_t>(o)] += d;
        float* gw_row = &grad_weights_[l][static_cast<std::size_t>(o) * in];
        const float* x_row = &prev[static_cast<std::size_t>(b) * in];
        for (int i = 0; i < in; ++i) gw_row[i] += d * x_row[i];
      }
    }
    if (l == 0) break;
    // Propagate delta to the previous layer through W^T and tanh'.
    std::vector<float> new_delta(static_cast<std::size_t>(batch) * in, 0.0f);
    for (int b = 0; b < batch; ++b) {
      for (int i = 0; i < in; ++i) {
        double sum = 0.0;
        for (int o = 0; o < out; ++o) {
          sum += double{weights_[l][static_cast<std::size_t>(o) * in + i]} *
                 delta[static_cast<std::size_t>(b) * out + o];
        }
        const float a = prev[static_cast<std::size_t>(b) * in + i];
        new_delta[static_cast<std::size_t>(b) * in + i] =
            static_cast<float>(sum * (1.0 - double{a} * a));  // tanh'
      }
    }
    delta = std::move(new_delta);
  }
}

void Mlp::SgdStep(float lr) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (std::size_t i = 0; i < weights_[l].size(); ++i) {
      weights_[l][i] -= lr * grad_weights_[l][i];
    }
    for (std::size_t i = 0; i < biases_[l].size(); ++i) {
      biases_[l][i] -= lr * grad_biases_[l][i];
    }
  }
}

bool Mlp::ParametersEqual(const Mlp& other, float tol) const {
  if (layer_sizes_ != other.layer_sizes_) return false;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (std::size_t i = 0; i < weights_[l].size(); ++i) {
      if (std::fabs(weights_[l][i] - other.weights_[l][i]) > tol) return false;
    }
    for (std::size_t i = 0; i < biases_[l].size(); ++i) {
      if (std::fabs(biases_[l][i] - other.biases_[l][i]) > tol) return false;
    }
  }
  return true;
}

SyntheticDataset MakeSyntheticDataset(int num_samples, int input_size,
                                      int output_size, std::uint64_t seed) {
  SyntheticDataset ds;
  ds.num_samples = num_samples;
  ds.input_size = input_size;
  ds.output_size = output_size;
  Rng rng(seed);
  ds.inputs.resize(static_cast<std::size_t>(num_samples) * input_size);
  for (float& v : ds.inputs) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  // Teacher: one random linear map + tanh, so the task is learnable.
  std::vector<float> teacher(static_cast<std::size_t>(input_size) *
                             output_size);
  for (float& w : teacher) w = static_cast<float>(rng.Normal(0.0, 0.5));
  ds.targets.resize(static_cast<std::size_t>(num_samples) * output_size);
  for (int n = 0; n < num_samples; ++n) {
    for (int o = 0; o < output_size; ++o) {
      double sum = 0.0;
      for (int i = 0; i < input_size; ++i) {
        sum += double{teacher[static_cast<std::size_t>(i) * output_size + o]} *
               ds.inputs[static_cast<std::size_t>(n) * input_size + i];
      }
      ds.targets[static_cast<std::size_t>(n) * output_size + o] =
          static_cast<float>(std::tanh(sum) + rng.Normal(0.0, 0.01));
    }
  }
  return ds;
}

}  // namespace aiacc::dnn
