#include "dnn/model.h"

#include <sstream>

#include "common/logging.h"

namespace aiacc::dnn {

std::string TensorShape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) out << ",";
    out << dims[i];
  }
  out << "]";
  return out.str();
}

ModelDescriptor::ModelDescriptor(std::string name,
                                 std::vector<LayerSpec> layers,
                                 double sm_busy_fraction)
    : name_(std::move(name)),
      layers_(std::move(layers)),
      sm_busy_fraction_(sm_busy_fraction) {
  AIACC_CHECK(!layers_.empty());
  int next_id = 0;
  for (int li = 0; li < static_cast<int>(layers_.size()); ++li) {
    const LayerSpec& layer = layers_[static_cast<std::size_t>(li)];
    fwd_flops_ += layer.fwd_flops_per_sample;
    int pi = 0;
    for (const TensorShape& shape : layer.params) {
      GradientSpec grad;
      grad.id = next_id++;
      grad.name = layer.name + ".p" + std::to_string(pi++);
      grad.shape = shape;
      grad.layer_index = li;
      total_params_ += grad.NumElements();
      gradients_.push_back(std::move(grad));
    }
  }
  AIACC_CHECK(!gradients_.empty());
  // Per-layer gradient id lists (gradient ids are assigned in layer order,
  // so each layer's ids are contiguous).
  layer_gradients_.resize(layers_.size());
  for (const GradientSpec& g : gradients_) {
    layer_gradients_[static_cast<std::size_t>(g.layer_index)].push_back(g.id);
  }
  // Backward production order: gradients of later layers are produced first;
  // within a layer, parameters surface in registration order.
  backward_order_.reserve(gradients_.size());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    for (int id : layer_gradients_[li]) backward_order_.push_back(id);
  }
}

ModelDescriptor::IterationProfile ModelDescriptor::Profile(
    const gpu::GpuModel& gpu, int batch) const {
  AIACC_CHECK(batch > 0);
  IterationProfile profile;
  const double b = static_cast<double>(batch);
  profile.forward_time = gpu.ComputeTime(FwdFlopsPerSample() * b);
  profile.backward_time = gpu.ComputeTime(BwdFlopsPerSample() * b);

  // Cumulative backward FLOPs, walking layers from the output backwards; a
  // layer's gradients become ready when its backward kernels finish.
  std::vector<double> layer_bwd_flops(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    layer_bwd_flops[li] = 2.0 * layers_[li].fwd_flops_per_sample * b;
  }
  const double total_bwd = BwdFlopsPerSample() * b;
  profile.ready_time.assign(gradients_.size(), 0.0);
  double cum = 0.0;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    cum += layer_bwd_flops[li];
    const double t = profile.backward_time * (total_bwd > 0 ? cum / total_bwd
                                                            : 1.0);
    for (int id : layer_gradients_[li]) {
      profile.ready_time[static_cast<std::size_t>(id)] = t;
    }
  }
  return profile;
}

std::vector<ModelDescriptor::GraphNode> ModelDescriptor::GraphFingerprint()
    const {
  std::vector<GraphNode> nodes;
  nodes.reserve(layers_.size());
  for (const LayerSpec& layer : layers_) {
    std::int64_t elems = 0;
    for (const TensorShape& s : layer.params) elems += s.NumElements();
    nodes.push_back(GraphNode{layer.kind, elems});
  }
  return nodes;
}

}  // namespace aiacc::dnn
