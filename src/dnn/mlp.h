// A real, numerically-exact multi-layer perceptron. This is the workload we
// push through the *actual* communication code paths (threaded transport and
// simulated collectives carrying real payloads) to prove the aggregation
// math is correct: data-parallel training with AIACC gradient aggregation
// must match single-worker full-batch training bit-for-bit when gradients are
// averaged deterministically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace aiacc::dnn {

/// Dense tanh MLP with a mean-squared-error head. Parameters and gradients
/// live in flat per-tensor vectors matching how AIACC registers gradients.
class Mlp {
 public:
  /// `layer_sizes` = {in, hidden..., out}.
  Mlp(std::vector<int> layer_sizes, std::uint64_t seed);

  [[nodiscard]] int InputSize() const noexcept { return layer_sizes_.front(); }
  [[nodiscard]] int OutputSize() const noexcept { return layer_sizes_.back(); }
  [[nodiscard]] std::size_t NumTensors() const noexcept {
    return weights_.size() + biases_.size();
  }
  [[nodiscard]] std::size_t NumParameters() const noexcept;

  /// Parameter tensors in registration order: w0, b0, w1, b1, ...
  [[nodiscard]] std::vector<std::span<float>> ParameterTensors();
  /// Gradient tensors in the same order (valid after Backward).
  [[nodiscard]] std::vector<std::span<float>> GradientTensors();

  /// Forward pass over a batch; rows of `x` are samples. Returns predictions
  /// (batch x out).
  std::vector<float> Forward(std::span<const float> x, int batch);

  /// MSE loss for predictions vs targets.
  static float MseLoss(std::span<const float> pred,
                       std::span<const float> target);

  /// Backward pass: computes dLoss/dParams into the gradient tensors.
  /// Must follow a Forward over the same batch. Gradients are averaged over
  /// the batch (so data-parallel averaging of per-worker gradients equals the
  /// full-batch gradient).
  void Backward(std::span<const float> x, std::span<const float> target,
                int batch);

  /// Plain SGD step: p -= lr * g.
  void SgdStep(float lr);

  /// Deep equality of parameters (for distributed-vs-sequential tests).
  [[nodiscard]] bool ParametersEqual(const Mlp& other, float tol) const;

 private:
  std::vector<int> layer_sizes_;
  std::vector<std::vector<float>> weights_;  // [out x in] row-major
  std::vector<std::vector<float>> biases_;
  std::vector<std::vector<float>> grad_weights_;
  std::vector<std::vector<float>> grad_biases_;
  // Saved activations from Forward (per layer, batch x width).
  std::vector<std::vector<float>> activations_;
};

/// Deterministic synthetic regression dataset: targets come from a fixed
/// random teacher network plus mild noise.
struct SyntheticDataset {
  std::vector<float> inputs;   // n x in
  std::vector<float> targets;  // n x out
  int num_samples = 0;
  int input_size = 0;
  int output_size = 0;
};

SyntheticDataset MakeSyntheticDataset(int num_samples, int input_size,
                                      int output_size, std::uint64_t seed);

}  // namespace aiacc::dnn
