// ModelDescriptor: the analytic representation of a DNN workload — per-layer
// parameter tensors and forward FLOPs. From it we derive everything the
// communication simulation needs: the gradient list (in backward production
// order), total parameter bytes, and the per-gradient ready-time schedule for
// a given GPU and batch size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/tensor.h"
#include "gpu/gpu_model.h"

namespace aiacc::dnn {

/// Coarse layer category, used for computation-graph similarity (§VI's
/// tuning cache keys deployments by DNN computation graph).
enum class LayerKind : std::uint8_t {
  kConv,
  kDense,
  kNorm,
  kAttention,
  kEmbedding,
  kOther,
};

struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kOther;
  /// Forward FLOPs per training sample (1 MAC = 2 FLOPs).
  double fwd_flops_per_sample = 0.0;
  /// Parameter tensors this layer owns (each produces one gradient).
  std::vector<TensorShape> params;
};

class ModelDescriptor {
 public:
  ModelDescriptor(std::string name, std::vector<LayerSpec> layers,
                  double sm_busy_fraction = 0.85);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<LayerSpec>& layers() const noexcept {
    return layers_;
  }

  /// All gradients, ordered by id. Ids are assigned in *forward* layer order
  /// (the paper sorts parameters at registration, giving a deterministic id
  /// space shared by all workers).
  [[nodiscard]] const std::vector<GradientSpec>& gradients() const noexcept {
    return gradients_;
  }

  /// Gradient ids in backward production order: last layer first.
  [[nodiscard]] const std::vector<int>& backward_order() const noexcept {
    return backward_order_;
  }

  [[nodiscard]] std::int64_t TotalParameters() const noexcept {
    return total_params_;
  }
  [[nodiscard]] std::size_t TotalParameterBytes(
      DType dtype = DType::kF32) const noexcept {
    return static_cast<std::size_t>(total_params_) * DTypeSize(dtype);
  }
  [[nodiscard]] double FwdFlopsPerSample() const noexcept {
    return fwd_flops_;
  }
  /// Backward costs ~2x forward (grad w.r.t. inputs + grad w.r.t. weights).
  [[nodiscard]] double BwdFlopsPerSample() const noexcept {
    return 2.0 * fwd_flops_;
  }
  [[nodiscard]] int NumGradients() const noexcept {
    return static_cast<int>(gradients_.size());
  }

  /// Fraction of SMs occupied by compute kernels while fwd/bwd runs.
  [[nodiscard]] double SmBusyFraction() const noexcept {
    return sm_busy_fraction_;
  }

  /// Per-iteration timing for one worker at `batch` samples.
  struct IterationProfile {
    double forward_time = 0.0;
    double backward_time = 0.0;
    /// ready_time[g] (seconds after backward starts) for gradient id g,
    /// proportional to cumulative backward FLOPs of the producing layers.
    std::vector<double> ready_time;
  };
  [[nodiscard]] IterationProfile Profile(const gpu::GpuModel& gpu,
                                         int batch) const;

  /// Graph fingerprint used by the tuning cache (see autotune::GraphDistance):
  /// a sequence of (kind, param_elements) pairs, one per layer.
  struct GraphNode {
    LayerKind kind;
    std::int64_t param_elements;
  };
  [[nodiscard]] std::vector<GraphNode> GraphFingerprint() const;

 private:
  std::string name_;
  std::vector<LayerSpec> layers_;
  std::vector<GradientSpec> gradients_;
  std::vector<std::vector<int>> layer_gradients_;  // layer -> gradient ids
  std::vector<int> backward_order_;
  std::int64_t total_params_ = 0;
  double fwd_flops_ = 0.0;
  double sm_busy_fraction_;
};

}  // namespace aiacc::dnn
