#include "dnn/convnet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aiacc::dnn {
namespace {
constexpr int kK = 3;  // conv kernel size (valid padding)
}

ConvNet::ConvNet(ConvNetConfig config, std::uint64_t seed)
    : config_(std::move(config)) {
  AIACC_CHECK(!config_.conv_channels.empty());
  Rng rng(seed);
  int c = config_.input_channels;
  int hw = config_.input_hw;
  for (int out_c : config_.conv_channels) {
    StageDims d;
    d.in_c = c;
    d.in_hw = hw;
    d.conv_hw = hw - (kK - 1);
    AIACC_CHECK(d.conv_hw >= 2);
    d.pool_hw = d.conv_hw / 2;
    AIACC_CHECK(d.pool_hw >= 1);
    dims_.push_back(d);

    std::vector<float> w(static_cast<std::size_t>(out_c) * c * kK * kK);
    const double scale = std::sqrt(2.0 / (c * kK * kK));
    for (float& v : w) v = static_cast<float>(rng.Normal(0.0, scale));
    conv_weights_.push_back(std::move(w));
    conv_biases_.emplace_back(static_cast<std::size_t>(out_c), 0.0f);
    grad_conv_weights_.emplace_back(conv_weights_.back().size(), 0.0f);
    grad_conv_biases_.emplace_back(static_cast<std::size_t>(out_c), 0.0f);

    c = out_c;
    hw = d.pool_hw;
  }
  flat_size_ = c * hw * hw;
  fc_weight_.resize(static_cast<std::size_t>(config_.num_classes) *
                    flat_size_);
  const double fc_scale = std::sqrt(2.0 / flat_size_);
  for (float& v : fc_weight_) v = static_cast<float>(rng.Normal(0.0, fc_scale));
  fc_bias_.assign(static_cast<std::size_t>(config_.num_classes), 0.0f);
  grad_fc_weight_.assign(fc_weight_.size(), 0.0f);
  grad_fc_bias_.assign(fc_bias_.size(), 0.0f);
}

std::size_t ConvNet::NumParameters() const noexcept {
  std::size_t n = fc_weight_.size() + fc_bias_.size();
  for (std::size_t s = 0; s < conv_weights_.size(); ++s) {
    n += conv_weights_[s].size() + conv_biases_[s].size();
  }
  return n;
}

std::vector<std::span<float>> ConvNet::ParameterTensors() {
  std::vector<std::span<float>> out;
  for (std::size_t s = 0; s < conv_weights_.size(); ++s) {
    out.emplace_back(conv_weights_[s]);
    out.emplace_back(conv_biases_[s]);
  }
  out.emplace_back(fc_weight_);
  out.emplace_back(fc_bias_);
  return out;
}

std::vector<std::span<float>> ConvNet::GradientTensors() {
  std::vector<std::span<float>> out;
  for (std::size_t s = 0; s < grad_conv_weights_.size(); ++s) {
    out.emplace_back(grad_conv_weights_[s]);
    out.emplace_back(grad_conv_biases_[s]);
  }
  out.emplace_back(grad_fc_weight_);
  out.emplace_back(grad_fc_bias_);
  return out;
}

std::vector<float> ConvNet::Forward(std::span<const float> images,
                                    int batch) {
  batch_ = batch;
  const std::size_t stages = dims_.size();
  pre_relu_.assign(stages, {});
  pooled_.assign(stages, {});
  pool_argmax_.assign(stages, {});

  // `current` holds the stage input, NCHW.
  std::vector<float> current(images.begin(), images.end());
  for (std::size_t s = 0; s < stages; ++s) {
    const StageDims& d = dims_[s];
    const int out_c = static_cast<int>(conv_biases_[s].size());
    const int chw = d.conv_hw;
    pre_relu_[s].assign(
        static_cast<std::size_t>(batch) * out_c * chw * chw, 0.0f);
    // Valid 3x3 convolution.
    for (int b = 0; b < batch; ++b) {
      for (int oc = 0; oc < out_c; ++oc) {
        for (int y = 0; y < chw; ++y) {
          for (int x = 0; x < chw; ++x) {
            double sum = conv_biases_[s][static_cast<std::size_t>(oc)];
            for (int ic = 0; ic < d.in_c; ++ic) {
              for (int ky = 0; ky < kK; ++ky) {
                for (int kx = 0; kx < kK; ++kx) {
                  const float in = current[static_cast<std::size_t>(
                      ((b * d.in_c + ic) * d.in_hw + (y + ky)) * d.in_hw +
                      (x + kx))];
                  const float w = conv_weights_[s][static_cast<std::size_t>(
                      ((oc * d.in_c + ic) * kK + ky) * kK + kx)];
                  sum += double{in} * w;
                }
              }
            }
            pre_relu_[s][static_cast<std::size_t>(
                ((b * out_c + oc) * chw + y) * chw + x)] =
                static_cast<float>(sum);
          }
        }
      }
    }
    // ReLU + 2x2 max pool (stride 2), recording argmax for backward.
    const int phw = d.pool_hw;
    pooled_[s].assign(static_cast<std::size_t>(batch) * out_c * phw * phw,
                      0.0f);
    pool_argmax_[s].assign(pooled_[s].size(), 0);
    for (int b = 0; b < batch; ++b) {
      for (int oc = 0; oc < out_c; ++oc) {
        for (int py = 0; py < phw; ++py) {
          for (int px = 0; px < phw; ++px) {
            float best = -1e30f;
            int best_idx = 0;
            for (int dy = 0; dy < 2; ++dy) {
              for (int dx = 0; dx < 2; ++dx) {
                const int idx = static_cast<int>(
                    ((b * out_c + oc) * chw + (py * 2 + dy)) * chw +
                    (px * 2 + dx));
                const float v = std::max(
                    0.0f, pre_relu_[s][static_cast<std::size_t>(idx)]);
                if (v > best) {
                  best = v;
                  best_idx = idx;
                }
              }
            }
            const std::size_t pidx = static_cast<std::size_t>(
                ((b * out_c + oc) * phw + py) * phw + px);
            pooled_[s][pidx] = best;
            pool_argmax_[s][pidx] = best_idx;
          }
        }
      }
    }
    current = pooled_[s];
  }

  // Dense head.
  logits_.assign(static_cast<std::size_t>(batch) * config_.num_classes, 0.0f);
  for (int b = 0; b < batch; ++b) {
    for (int k = 0; k < config_.num_classes; ++k) {
      double sum = fc_bias_[static_cast<std::size_t>(k)];
      for (int i = 0; i < flat_size_; ++i) {
        sum += double{fc_weight_[static_cast<std::size_t>(k * flat_size_ +
                                                          i)]} *
               current[static_cast<std::size_t>(b * flat_size_ + i)];
      }
      logits_[static_cast<std::size_t>(b * config_.num_classes + k)] =
          static_cast<float>(sum);
    }
  }
  // Softmax probabilities (saved for loss/backward).
  probs_ = logits_;
  for (int b = 0; b < batch; ++b) {
    float* row = &probs_[static_cast<std::size_t>(b * config_.num_classes)];
    const float mx = *std::max_element(row, row + config_.num_classes);
    double z = 0.0;
    for (int k = 0; k < config_.num_classes; ++k) {
      row[k] = std::exp(row[k] - mx);
      z += row[k];
    }
    for (int k = 0; k < config_.num_classes; ++k) {
      row[k] = static_cast<float>(row[k] / z);
    }
  }
  return logits_;
}

float ConvNet::Loss(std::span<const int> labels) const {
  AIACC_CHECK(static_cast<int>(labels.size()) == batch_);
  double sum = 0.0;
  for (int b = 0; b < batch_; ++b) {
    const float p = probs_[static_cast<std::size_t>(
        b * config_.num_classes + labels[static_cast<std::size_t>(b)])];
    sum -= std::log(std::max(p, 1e-12f));
  }
  return static_cast<float>(sum / batch_);
}

double ConvNet::Accuracy(std::span<const int> labels) const {
  int correct = 0;
  for (int b = 0; b < batch_; ++b) {
    const float* row =
        &logits_[static_cast<std::size_t>(b * config_.num_classes)];
    const int pred = static_cast<int>(
        std::max_element(row, row + config_.num_classes) - row);
    if (pred == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return static_cast<double>(correct) / batch_;
}

void ConvNet::Backward(std::span<const float> images,
                       std::span<const int> labels, int batch) {
  AIACC_CHECK(batch == batch_);
  const std::size_t stages = dims_.size();

  // dLoss/dLogits for softmax cross-entropy, averaged over the batch.
  std::vector<float> dlogits = probs_;
  for (int b = 0; b < batch; ++b) {
    dlogits[static_cast<std::size_t>(b * config_.num_classes +
                                     labels[static_cast<std::size_t>(b)])] -=
        1.0f;
  }
  for (float& v : dlogits) v /= static_cast<float>(batch);

  // Dense head gradients.
  const std::vector<float>& flat_in = pooled_.back();
  std::fill(grad_fc_weight_.begin(), grad_fc_weight_.end(), 0.0f);
  std::fill(grad_fc_bias_.begin(), grad_fc_bias_.end(), 0.0f);
  std::vector<float> dflat(static_cast<std::size_t>(batch) * flat_size_,
                           0.0f);
  for (int b = 0; b < batch; ++b) {
    for (int k = 0; k < config_.num_classes; ++k) {
      const float d =
          dlogits[static_cast<std::size_t>(b * config_.num_classes + k)];
      grad_fc_bias_[static_cast<std::size_t>(k)] += d;
      for (int i = 0; i < flat_size_; ++i) {
        grad_fc_weight_[static_cast<std::size_t>(k * flat_size_ + i)] +=
            d * flat_in[static_cast<std::size_t>(b * flat_size_ + i)];
        dflat[static_cast<std::size_t>(b * flat_size_ + i)] +=
            d * fc_weight_[static_cast<std::size_t>(k * flat_size_ + i)];
      }
    }
  }

  // Walk the conv stages backwards. `dpool` is dLoss/d(pool output).
  std::vector<float> dpool = std::move(dflat);
  for (std::size_t s = stages; s-- > 0;) {
    const StageDims& d = dims_[s];
    const int out_c = static_cast<int>(conv_biases_[s].size());
    const int chw = d.conv_hw;

    // Un-pool through the recorded argmax, then ReLU'.
    std::vector<float> dconv(
        static_cast<std::size_t>(batch) * out_c * chw * chw, 0.0f);
    for (std::size_t pidx = 0; pidx < dpool.size(); ++pidx) {
      const int win = pool_argmax_[s][pidx];
      if (pre_relu_[s][static_cast<std::size_t>(win)] > 0.0f) {
        dconv[static_cast<std::size_t>(win)] += dpool[pidx];
      }
    }

    // Conv gradients (+ input gradient for the next stage down).
    const std::vector<float>& stage_input =
        s == 0 ? std::vector<float>(images.begin(), images.end())
               : pooled_[s - 1];
    std::fill(grad_conv_weights_[s].begin(), grad_conv_weights_[s].end(),
              0.0f);
    std::fill(grad_conv_biases_[s].begin(), grad_conv_biases_[s].end(),
              0.0f);
    std::vector<float> dinput;
    if (s > 0) {
      dinput.assign(
          static_cast<std::size_t>(batch) * d.in_c * d.in_hw * d.in_hw,
          0.0f);
    }
    for (int b = 0; b < batch; ++b) {
      for (int oc = 0; oc < out_c; ++oc) {
        for (int y = 0; y < chw; ++y) {
          for (int x = 0; x < chw; ++x) {
            const float g = dconv[static_cast<std::size_t>(
                ((b * out_c + oc) * chw + y) * chw + x)];
            if (g == 0.0f) continue;
            grad_conv_biases_[s][static_cast<std::size_t>(oc)] += g;
            for (int ic = 0; ic < d.in_c; ++ic) {
              for (int ky = 0; ky < kK; ++ky) {
                for (int kx = 0; kx < kK; ++kx) {
                  const std::size_t in_idx = static_cast<std::size_t>(
                      ((b * d.in_c + ic) * d.in_hw + (y + ky)) * d.in_hw +
                      (x + kx));
                  const std::size_t w_idx = static_cast<std::size_t>(
                      ((oc * d.in_c + ic) * kK + ky) * kK + kx);
                  grad_conv_weights_[s][w_idx] += g * stage_input[in_idx];
                  if (s > 0) dinput[in_idx] += g * conv_weights_[s][w_idx];
                }
              }
            }
          }
        }
      }
    }
    if (s > 0) dpool = std::move(dinput);
  }
}

void ConvNet::SgdStep(float lr) {
  auto params = ParameterTensors();
  auto grads = GradientTensors();
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (std::size_t i = 0; i < params[t].size(); ++i) {
      params[t][i] -= lr * grads[t][i];
    }
  }
}

bool ConvNet::ParametersEqual(const ConvNet& other, float tol) const {
  auto mine = const_cast<ConvNet*>(this)->ParameterTensors();
  auto theirs = const_cast<ConvNet&>(other).ParameterTensors();
  if (mine.size() != theirs.size()) return false;
  for (std::size_t t = 0; t < mine.size(); ++t) {
    if (mine[t].size() != theirs[t].size()) return false;
    for (std::size_t i = 0; i < mine[t].size(); ++i) {
      if (std::fabs(mine[t][i] - theirs[t][i]) > tol) return false;
    }
  }
  return true;
}

SyntheticImageDataset MakeSyntheticImages(int num_samples, int hw,
                                          int num_classes,
                                          std::uint64_t seed) {
  SyntheticImageDataset ds;
  ds.num_samples = num_samples;
  ds.hw = hw;
  ds.num_classes = num_classes;
  Rng rng(seed);
  ds.images.resize(static_cast<std::size_t>(num_samples) * hw * hw);
  ds.labels.resize(static_cast<std::size_t>(num_samples));
  for (int n = 0; n < num_samples; ++n) {
    const int label = static_cast<int>(rng.UniformInt(0, num_classes - 1));
    ds.labels[static_cast<std::size_t>(n)] = label;
    float* img = &ds.images[static_cast<std::size_t>(n) * hw * hw];
    for (int y = 0; y < hw; ++y) {
      for (int x = 0; x < hw; ++x) {
        // Class-dependent spatial pattern: stripes of varying orientation.
        double v = 0.0;
        switch (label % 3) {
          case 0: v = (y / 2) % 2 ? 1.0 : -1.0; break;          // horizontal
          case 1: v = (x / 2) % 2 ? 1.0 : -1.0; break;          // vertical
          default: v = ((x + y) / 2) % 2 ? 1.0 : -1.0; break;   // diagonal
        }
        img[y * hw + x] =
            static_cast<float>(v + rng.Normal(0.0, 0.25));
      }
    }
  }
  return ds;
}

}  // namespace aiacc::dnn
