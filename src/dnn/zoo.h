// Model zoo: analytic descriptors for every DNN the paper evaluates
// (Table I, §VII-B, §VIII-C/D). Architectures are constructed layer-by-layer
// from their published definitions, so parameter counts are exact; FLOPs use
// the 1 MAC = 2 FLOPs convention throughout (Table I mixes conventions across
// rows — EXPERIMENTS.md records both numbers).
#pragma once

#include <string>
#include <vector>

#include "dnn/model.h"

namespace aiacc::dnn {

/// VGG-16, ImageNet 224x224 (138.3M params).
ModelDescriptor MakeVgg16();

/// ResNet-50, ImageNet (25.6M params).
ModelDescriptor MakeResNet50();

/// ResNet-101, ImageNet.
ModelDescriptor MakeResNet101();

/// Transformer base (Vaswani et al.), shared 37k vocab, 6+6 layers, d=512.
/// `seq_len` tokens per sample on each of the encoder/decoder sides.
ModelDescriptor MakeTransformerBase(int seq_len = 512);

/// BERT-Large encoder stack: 24 layers, d=1024, ff=4096 (302.2M params,
/// matching Table I, which counts the encoder without embedding tables).
/// `seq_len` tokens per sample.
ModelDescriptor MakeBertLarge(int seq_len = 384);

/// GPT-2 XL: 48 decoder layers, d=1600 (~1.56B params incl. embeddings).
ModelDescriptor MakeGpt2Xl(int seq_len = 512);

/// Synthetic warehouse-scale CTR model (§VIII-C): tens of thousands of small
/// embedding-shard gradients plus a modest MLP tower. Communication is
/// dominated by per-tensor bookkeeping, which is what makes Horovod's
/// master-based synchronization the bottleneck at 128 GPUs.
ModelDescriptor MakeCtrModel(int num_embedding_fields = 20000);

/// InsightFace-style ResNet-100 face-recognition backbone (112x112 input,
/// 512-d embedding head).
ModelDescriptor MakeInsightFaceR100();

/// All public zoo entries (excludes CTR variants), for sweeps.
std::vector<ModelDescriptor> AllZooModels();

/// Lookup by name ("vgg16", "resnet50", "resnet101", "transformer",
/// "bert-large", "gpt2-xl", "ctr", "insightface-r100").
ModelDescriptor MakeModelByName(const std::string& name);

}  // namespace aiacc::dnn
