// A real, numerically-exact convolutional network — the CV counterpart of
// the MLP substrate. Architecture: [Conv(3x3, valid) -> ReLU -> MaxPool2x2]
// x N -> Flatten -> Dense -> softmax cross-entropy. Used to push an actual
// CNN (the paper's dominant workload class) through the distributed
// gradient paths: data-parallel ConvNet training via Perseus / the threaded
// AIACC engine must match sequential full-batch training.
//
// Layout conventions: tensors are NCHW, flattened row-major; conv weights
// are [out_c, in_c, k, k].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace aiacc::dnn {

struct ConvNetConfig {
  int input_channels = 1;
  int input_hw = 8;                     // square inputs
  std::vector<int> conv_channels = {4, 8};  // one 3x3 conv per entry
  int num_classes = 3;
};

class ConvNet {
 public:
  ConvNet(ConvNetConfig config, std::uint64_t seed);

  [[nodiscard]] const ConvNetConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t NumParameters() const noexcept;
  [[nodiscard]] std::size_t NumTensors() const noexcept {
    return conv_weights_.size() + conv_biases_.size() + 2;  // + fc w, b
  }

  /// Parameter / gradient tensors in registration order:
  /// conv0.w, conv0.b, conv1.w, conv1.b, ..., fc.w, fc.b.
  [[nodiscard]] std::vector<std::span<float>> ParameterTensors();
  [[nodiscard]] std::vector<std::span<float>> GradientTensors();

  /// Forward pass over `batch` images; returns per-class logits
  /// (batch x num_classes).
  std::vector<float> Forward(std::span<const float> images, int batch);

  /// Mean softmax cross-entropy of the last Forward's logits vs labels.
  float Loss(std::span<const int> labels) const;

  /// Backward from softmax cross-entropy; fills gradient tensors (averaged
  /// over the batch). Must follow Forward on the same batch.
  void Backward(std::span<const float> images, std::span<const int> labels,
                int batch);

  /// p -= lr * g on every parameter.
  void SgdStep(float lr);

  [[nodiscard]] bool ParametersEqual(const ConvNet& other, float tol) const;

  /// Classification accuracy of the last Forward's logits.
  [[nodiscard]] double Accuracy(std::span<const int> labels) const;

 private:
  struct StageDims {
    int in_c, in_hw;    // input of the conv
    int conv_hw;        // after valid 3x3 conv: in_hw - 2
    int pool_hw;        // after 2x2 max pool: conv_hw / 2
  };

  ConvNetConfig config_;
  std::vector<StageDims> dims_;
  int flat_size_ = 0;

  std::vector<std::vector<float>> conv_weights_;  // [out,in,3,3]
  std::vector<std::vector<float>> conv_biases_;
  std::vector<float> fc_weight_;  // [classes, flat]
  std::vector<float> fc_bias_;

  std::vector<std::vector<float>> grad_conv_weights_;
  std::vector<std::vector<float>> grad_conv_biases_;
  std::vector<float> grad_fc_weight_;
  std::vector<float> grad_fc_bias_;

  // Forward activations (saved for backward).
  int batch_ = 0;
  std::vector<std::vector<float>> pre_relu_;   // conv output per stage
  std::vector<std::vector<float>> pooled_;     // pool output per stage
  std::vector<std::vector<int>> pool_argmax_;  // winning index per pool cell
  std::vector<float> logits_;
  std::vector<float> probs_;
};

/// Synthetic image-classification dataset: class-dependent spatial patterns
/// plus noise, learnable by a small ConvNet.
struct SyntheticImageDataset {
  std::vector<float> images;  // n x (c*hw*hw)
  std::vector<int> labels;    // n
  int num_samples = 0;
  int channels = 1;
  int hw = 8;
  int num_classes = 3;
};

SyntheticImageDataset MakeSyntheticImages(int num_samples, int hw,
                                          int num_classes,
                                          std::uint64_t seed);

}  // namespace aiacc::dnn
