#include "dnn/zoo.h"

#include <cmath>

#include "common/logging.h"

namespace aiacc::dnn {
namespace {

// --- building blocks -------------------------------------------------------

/// 2D convolution layer: kxk kernel, `in`->`out` channels, producing an
/// `out_hw` x `out_hw` feature map, with optional bias and a following
/// batch-norm (scale+shift). FLOPs: 2 * k^2 * in * out * out_hw^2.
LayerSpec Conv(std::string name, int in, int out, int k, int out_hw,
               bool bias = false, bool batch_norm = true) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConv;
  layer.fwd_flops_per_sample = 2.0 * k * k * in * out *
                               static_cast<double>(out_hw) * out_hw;
  layer.params.push_back(TensorShape{{out, in, k, k}});
  if (bias) layer.params.push_back(TensorShape{{out}});
  if (batch_norm) {
    layer.params.push_back(TensorShape{{out}});  // BN gamma
    layer.params.push_back(TensorShape{{out}});  // BN beta
  }
  return layer;
}

/// Fully connected layer `in`->`out` with bias.
LayerSpec Dense(std::string name, std::int64_t in, std::int64_t out,
                double flops_scale = 1.0) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kDense;
  layer.fwd_flops_per_sample =
      2.0 * static_cast<double>(in) * static_cast<double>(out) * flops_scale;
  layer.params.push_back(TensorShape{{out, in}});
  layer.params.push_back(TensorShape{{out}});
  return layer;
}

/// LayerNorm over width d.
LayerSpec LayerNorm(std::string name, int d, double tokens) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kNorm;
  layer.fwd_flops_per_sample = 8.0 * d * tokens;
  layer.params.push_back(TensorShape{{d}});
  layer.params.push_back(TensorShape{{d}});
  return layer;
}

/// Multi-head self-attention block at width d over `tokens` tokens per
/// sample: QKV + output projections (4*d^2 weights) plus the d*tokens^2
/// attention matmuls.
LayerSpec Attention(std::string name, int d, double tokens) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kAttention;
  layer.fwd_flops_per_sample =
      2.0 * 4.0 * static_cast<double>(d) * d * tokens +  // projections
      2.0 * 2.0 * static_cast<double>(d) * tokens * tokens;  // QK^T, AV
  for (const char* p : {"q", "k", "v", "o"}) {
    (void)p;
    layer.params.push_back(TensorShape{{d, d}});
    layer.params.push_back(TensorShape{{d}});
  }
  return layer;
}

/// Token embedding table (gradient is dense in our descriptor; the CTR model
/// uses many small tables instead to model sparse traffic).
LayerSpec Embedding(std::string name, std::int64_t vocab, int d,
                    double tokens) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kEmbedding;
  layer.fwd_flops_per_sample = 2.0 * d * tokens;  // lookup + scale
  layer.params.push_back(TensorShape{{vocab, d}});
  return layer;
}

/// Transformer feed-forward block d -> ff -> d.
void AppendTransformerFfn(std::vector<LayerSpec>& layers,
                          const std::string& prefix, int d, int ff,
                          double tokens) {
  layers.push_back(Dense(prefix + ".ffn1", d, ff, tokens));
  layers.push_back(Dense(prefix + ".ffn2", ff, d, tokens));
}

/// One full transformer encoder block.
void AppendEncoderBlock(std::vector<LayerSpec>& layers,
                        const std::string& prefix, int d, int ff,
                        double tokens) {
  layers.push_back(Attention(prefix + ".attn", d, tokens));
  layers.push_back(LayerNorm(prefix + ".ln1", d, tokens));
  AppendTransformerFfn(layers, prefix, d, ff, tokens);
  layers.push_back(LayerNorm(prefix + ".ln2", d, tokens));
}

/// ResNet bottleneck unit: 1x1 (width), 3x3 (width), 1x1 (4*width), with a
/// projection shortcut on the first unit of each stage.
void AppendBottleneck(std::vector<LayerSpec>& layers, const std::string& name,
                      int in, int width, int hw, bool downsample) {
  const int out = width * 4;
  layers.push_back(Conv(name + ".conv1", in, width, 1, hw));
  layers.push_back(Conv(name + ".conv2", width, width, 3, hw));
  layers.push_back(Conv(name + ".conv3", width, out, 1, hw));
  if (downsample) {
    layers.push_back(Conv(name + ".down", in, out, 1, hw));
  }
}

ModelDescriptor MakeResNet(const std::string& name,
                           const std::vector<int>& stage_blocks, int input_hw,
                           int head_dim, double sm_busy_fraction) {
  std::vector<LayerSpec> layers;
  // Stem: 7x7/2 conv + pool.
  const int stem_hw = input_hw / 4;
  layers.push_back(Conv("stem", 3, 64, 7, input_hw / 2));
  int in = 64;
  int hw = stem_hw;
  const int widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    if (stage > 0) hw /= 2;
    for (int b = 0; b < stage_blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::string block_name =
          "s" + std::to_string(stage + 1) + ".b" + std::to_string(b);
      AppendBottleneck(layers, block_name, in, widths[stage], hw, b == 0);
      in = widths[stage] * 4;
    }
  }
  layers.push_back(Dense("fc", in, head_dim));
  return ModelDescriptor(name, std::move(layers), sm_busy_fraction);
}

}  // namespace

ModelDescriptor MakeVgg16() {
  std::vector<LayerSpec> layers;
  struct ConvCfg { int in, out, hw; };
  // Feature extractor: (in, out, output feature size) per 3x3 conv.
  const ConvCfg cfg[] = {
      {3, 64, 224},    {64, 64, 224},                      // block1
      {64, 128, 112},  {128, 128, 112},                    // block2
      {128, 256, 56},  {256, 256, 56},  {256, 256, 56},    // block3
      {256, 512, 28},  {512, 512, 28},  {512, 512, 28},    // block4
      {512, 512, 14},  {512, 512, 14},  {512, 512, 14},    // block5
  };
  int i = 0;
  for (const ConvCfg& c : cfg) {
    layers.push_back(Conv("conv" + std::to_string(i++), c.in, c.out, 3, c.hw,
                          /*bias=*/true, /*batch_norm=*/false));
  }
  layers.push_back(Dense("fc1", 512 * 7 * 7, 4096));
  layers.push_back(Dense("fc2", 4096, 4096));
  layers.push_back(Dense("fc3", 4096, 1000));
  // VGG's huge dense tail means compute kernels are GEMM-heavy; SM occupancy
  // is high during backward.
  return ModelDescriptor("vgg16", std::move(layers), 0.85);
}

ModelDescriptor MakeResNet50() {
  return MakeResNet("resnet50", {3, 4, 6, 3}, 224, 1000, 0.80);
}

ModelDescriptor MakeResNet101() {
  return MakeResNet("resnet101", {3, 4, 23, 3}, 224, 1000, 0.80);
}

ModelDescriptor MakeTransformerBase(int seq_len) {
  AIACC_CHECK(seq_len > 0);
  const int d = 512;
  const int ff = 2048;
  const double tokens = seq_len;
  std::vector<LayerSpec> layers;
  layers.push_back(Embedding("embed", 37000, d, tokens));
  for (int l = 0; l < 6; ++l) {
    AppendEncoderBlock(layers, "enc" + std::to_string(l), d, ff, tokens);
  }
  for (int l = 0; l < 6; ++l) {
    const std::string prefix = "dec" + std::to_string(l);
    layers.push_back(Attention(prefix + ".self_attn", d, tokens));
    layers.push_back(LayerNorm(prefix + ".ln1", d, tokens));
    layers.push_back(Attention(prefix + ".cross_attn", d, tokens));
    layers.push_back(LayerNorm(prefix + ".ln2", d, tokens));
    AppendTransformerFfn(layers, prefix, d, ff, tokens);
    layers.push_back(LayerNorm(prefix + ".ln3", d, tokens));
  }
  // Output projection shares the embedding in the reference model; the
  // softmax matmul cost still applies.
  LayerSpec softmax;
  softmax.name = "softmax_proj";
  softmax.kind = LayerKind::kDense;
  softmax.fwd_flops_per_sample = 2.0 * 37000.0 * d * tokens;
  layers.push_back(std::move(softmax));
  return ModelDescriptor("transformer", std::move(layers), 0.88);
}

ModelDescriptor MakeBertLarge(int seq_len) {
  AIACC_CHECK(seq_len > 0);
  const int d = 1024;
  const int ff = 4096;
  const double tokens = seq_len;
  std::vector<LayerSpec> layers;
  for (int l = 0; l < 24; ++l) {
    AppendEncoderBlock(layers, "layer" + std::to_string(l), d, ff, tokens);
  }
  return ModelDescriptor("bert-large", std::move(layers), 0.90);
}

ModelDescriptor MakeGpt2Xl(int seq_len) {
  AIACC_CHECK(seq_len > 0);
  const int d = 1600;
  const int ff = 4 * d;
  const double tokens = seq_len;
  std::vector<LayerSpec> layers;
  layers.push_back(Embedding("wte", 50257, d, tokens));
  layers.push_back(Embedding("wpe", 1024, d, tokens));
  for (int l = 0; l < 48; ++l) {
    AppendEncoderBlock(layers, "h" + std::to_string(l), d, ff, tokens);
  }
  layers.push_back(LayerNorm("ln_f", d, tokens));
  return ModelDescriptor("gpt2-xl", std::move(layers), 0.90);
}

ModelDescriptor MakeCtrModel(int num_embedding_fields) {
  AIACC_CHECK(num_embedding_fields > 0);
  std::vector<LayerSpec> layers;
  // Warehouse-scale CTR profile: tens of thousands of per-field embedding
  // shards, each a *small* dense gradient (the trained slice of a huge
  // sparse table touched by the minibatch). Communication cost per tensor is
  // tiny but per-tensor *bookkeeping* is huge — exactly the profile on which
  // a master-coordinated framework melts down (§VIII-C: the master walks
  // every (worker, tensor) readiness entry).
  const std::int64_t field_rows[] = {32, 64, 128, 256, 512};
  const int dim = 8;
  for (int f = 0; f < num_embedding_fields; ++f) {
    const std::int64_t rows = field_rows[static_cast<std::size_t>(f) % 5];
    layers.push_back(
        Embedding("field" + std::to_string(f), rows, dim, /*tokens=*/1.0));
  }
  // Field embeddings are sum-pooled into a fixed-width vector before the
  // dense tower (standard practice: the tower does not scale with fields).
  const std::int64_t pooled = 4096;
  layers.push_back(Dense("tower1", pooled, 1024));
  layers.push_back(Dense("tower2", 1024, 512));
  layers.push_back(Dense("tower3", 512, 256));
  layers.push_back(Dense("tower4", 256, 1));
  // CTR models are memory-bound lookups: GPUs are mostly idle during
  // backward, so comm streams schedule freely.
  return ModelDescriptor("ctr", std::move(layers), 0.35);
}

ModelDescriptor MakeInsightFaceR100() {
  // 112x112 input, deeper stage-3, 512-d embedding head (ArcFace backbone).
  return MakeResNet("insightface-r100", {3, 13, 30, 3}, 112, 512, 0.80);
}

std::vector<ModelDescriptor> AllZooModels() {
  std::vector<ModelDescriptor> models;
  models.push_back(MakeVgg16());
  models.push_back(MakeResNet50());
  models.push_back(MakeResNet101());
  models.push_back(MakeTransformerBase());
  models.push_back(MakeBertLarge());
  return models;
}

ModelDescriptor MakeModelByName(const std::string& name) {
  if (name == "vgg16") return MakeVgg16();
  if (name == "resnet50") return MakeResNet50();
  if (name == "resnet101") return MakeResNet101();
  if (name == "transformer") return MakeTransformerBase();
  if (name == "bert-large") return MakeBertLarge();
  if (name == "gpt2-xl") return MakeGpt2Xl();
  if (name == "ctr") return MakeCtrModel();
  if (name == "insightface-r100") return MakeInsightFaceR100();
  AIACC_CHECK(false && "unknown model name");
  return MakeResNet50();  // unreachable
}

}  // namespace aiacc::dnn
