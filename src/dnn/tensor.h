// Descriptor types for model parameters/gradients. The simulator never
// materializes full ImageNet-scale tensors — descriptors carry shapes and
// byte sizes — but the collective layer *does* move real float payloads for
// (smaller) verification buffers, so sizes here are exact.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace aiacc::dnn {

struct TensorShape {
  std::vector<std::int64_t> dims;

  [[nodiscard]] std::int64_t NumElements() const noexcept {
    std::int64_t n = 1;
    for (std::int64_t d : dims) n *= d;
    return n;
  }

  [[nodiscard]] std::string ToString() const;
};

/// Data type of gradients on the wire. The paper's gradient-compression
/// feature transmits fp16 ("half-precision representation", §X).
enum class DType : std::uint8_t { kF32, kF16 };

inline std::size_t DTypeSize(DType t) noexcept {
  return t == DType::kF32 ? 4 : 2;
}

/// One gradient tensor produced during backward propagation.
struct GradientSpec {
  int id = 0;            // index in the gradient synchronization vector
  std::string name;
  TensorShape shape;
  int layer_index = 0;   // producing layer (forward order)

  [[nodiscard]] std::int64_t NumElements() const noexcept {
    return shape.NumElements();
  }
  [[nodiscard]] std::size_t ByteSize(DType dtype = DType::kF32) const noexcept {
    return static_cast<std::size_t>(NumElements()) * DTypeSize(dtype);
  }
};

}  // namespace aiacc::dnn
