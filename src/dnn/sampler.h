// DistributedSampler: deterministic data sharding for data parallelism —
// the utility the porting tool inserts into converted scripts
// (sampler=perseus.DistributedSampler(...)). Semantics follow the PyTorch
// sampler the paper's users would know: every rank sees an identical
// epoch-seeded shuffle of the dataset, takes a disjoint contiguous slice of
// it, and the dataset is padded by wrap-around so all ranks process the
// same number of samples (keeping collective calls aligned).
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace aiacc::dnn {

class DistributedSampler {
 public:
  DistributedSampler(int dataset_size, int world_size, int rank,
                     std::uint64_t seed = 0, bool shuffle = true)
      : dataset_size_(dataset_size),
        world_size_(world_size),
        rank_(rank),
        seed_(seed),
        shuffle_(shuffle) {
    AIACC_CHECK(dataset_size >= 1);
    AIACC_CHECK(world_size >= 1);
    AIACC_CHECK(rank >= 0 && rank < world_size);
  }

  /// Samples per rank per epoch: ceil(dataset / world).
  [[nodiscard]] int SamplesPerRank() const noexcept {
    return (dataset_size_ + world_size_ - 1) / world_size_;
  }

  /// Advance to `epoch` (changes the shuffle; identical on every rank).
  void SetEpoch(int epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] int epoch() const noexcept { return epoch_; }

  /// This rank's sample indices for the current epoch.
  [[nodiscard]] std::vector<int> Indices() const;

 private:
  int dataset_size_;
  int world_size_;
  int rank_;
  std::uint64_t seed_;
  bool shuffle_;
  int epoch_ = 0;
};

}  // namespace aiacc::dnn
