#include "dnn/sampler.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace aiacc::dnn {

std::vector<int> DistributedSampler::Indices() const {
  std::vector<int> all(static_cast<std::size_t>(dataset_size_));
  std::iota(all.begin(), all.end(), 0);
  if (shuffle_) {
    // Epoch-seeded shuffle, identical on every rank.
    Rng rng(seed_ * 1000003ULL + static_cast<std::uint64_t>(epoch_));
    std::shuffle(all.begin(), all.end(), rng);
  }
  // Pad by wrap-around so every rank gets the same count.
  const int per_rank = SamplesPerRank();
  const int total = per_rank * world_size_;
  all.reserve(static_cast<std::size_t>(total));
  for (int i = dataset_size_; i < total; ++i) {
    all.push_back(all[static_cast<std::size_t>(i - dataset_size_)]);
  }
  // Contiguous slice for this rank.
  std::vector<int> mine(
      all.begin() + static_cast<std::ptrdiff_t>(rank_) * per_rank,
      all.begin() + static_cast<std::ptrdiff_t>(rank_ + 1) * per_rank);
  return mine;
}

}  // namespace aiacc::dnn
