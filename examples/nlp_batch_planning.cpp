// Domain example: fine-tuning BERT-Large on a small cluster (the Fig. 14
// regime the paper highlights — modest batches, communication-heavy). The
// example sweeps per-GPU batch sizes on 16 GPUs, shows where AIACC's
// multi-streaming pays most, and compares TCP against an RDMA upgrade so a
// user can decide whether the RDMA premium is worth it for their batch.
//
// Run: ./nlp_batch_planning [gpus]
#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "trainer/harness.h"

using namespace aiacc;

namespace {

double Measure(int gpus, int batch, trainer::EngineKind engine,
               net::TransportKind transport) {
  trainer::RunSpec spec;
  spec.model_name = "bert-large";
  spec.topology = trainer::MakeTopology(gpus, 8, transport);
  spec.engine = engine;
  spec.batch_per_gpu = batch;
  spec.aiacc_config.num_streams = 16;
  spec.warmup_iterations = 2;
  spec.measure_iterations = 5;
  return trainer::Run(spec).throughput;
}

}  // namespace

int main(int argc, char** argv) {
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("BERT-Large fine-tuning plan on %d GPUs\n\n", gpus);

  std::printf("batch-size sweep (TCP 30 Gbps):\n");
  TablePrinter table({"batch/GPU", "AIACC (seq/s)", "Horovod (seq/s)",
                      "speedup", "AIACC RDMA (seq/s)", "RDMA gain"});
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    const double aiacc = Measure(gpus, batch, trainer::EngineKind::kAiacc,
                                 net::TransportKind::kTcp);
    const double horovod = Measure(gpus, batch, trainer::EngineKind::kHorovod,
                                   net::TransportKind::kTcp);
    const double rdma = Measure(gpus, batch, trainer::EngineKind::kAiacc,
                                net::TransportKind::kRdma);
    table.AddRow({std::to_string(batch), FormatDouble(aiacc, 1),
                  FormatDouble(horovod, 1),
                  FormatDouble(aiacc / horovod, 2) + "x",
                  FormatDouble(rdma, 1),
                  FormatDouble(rdma / aiacc, 2) + "x"});
  }
  table.Print();

  std::printf(
      "\nreading the table:\n"
      "  * small batches are communication-bound: multi-streaming is worth\n"
      "    2-3x over a single-stream engine (paper Fig. 14);\n"
      "  * at large batches compute dominates and every engine converges;\n"
      "  * the RDMA column shows whether faster links still help once the\n"
      "    bandwidth is already being multiplexed by AIACC's streams.\n");
  return 0;
}
