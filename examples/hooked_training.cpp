// The full AIACC-Training runtime with real threads (paper Fig. 4-6): this
// example drives ThreadedAiaccEngine the way a framework integration would —
// gradients are pushed through the hook as backward propagation produces
// them (output layer first), the MPI-process thread synchronizes and packs
// them concurrently, and the communication stream pool all-reduces units
// while later gradients are still being computed.
//
// Run: ./hooked_training [world_size] [num_streams]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "core/threaded_engine.h"
#include "dnn/mlp.h"

using namespace aiacc;

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 4;
  const int streams = argc > 2 ? std::atoi(argv[2]) : 3;
  const int steps = 25;
  const float lr = 0.2f;

  core::CommConfig config;
  config.num_streams = streams;
  config.granularity_bytes = 256;  // small units: show merging & splitting

  std::printf("AIACC threaded runtime: %d ranks x %d communication streams, "
              "granularity %zu B\n", world, streams,
              config.granularity_bytes);

  const auto ds = dnn::MakeSyntheticDataset(32 * world, 8, 2, 99);
  const int shard = ds.num_samples / world;

  core::ThreadedAiaccEngine engine(world, config);
  std::vector<std::thread> ranks;
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      dnn::Mlp model({8, 16, 2}, /*seed=*/4242);

      // Framework integration: register every parameter's gradient tensor
      // once at model-load time (§V-A-1).
      auto grads = model.GradientTensors();
      std::vector<std::string> names;
      for (std::size_t t = 0; t < grads.size(); ++t) {
        names.push_back("layer" + std::to_string(t / 2) +
                        (t % 2 == 0 ? ".weight" : ".bias"));
        if (auto st = worker.Register(names.back(), grads[t]); !st.ok()) {
          std::fprintf(stderr, "register failed: %s\n",
                       st.ToString().c_str());
          return;
        }
      }
      worker.Finalize();

      std::vector<float> x(ds.inputs.begin() + r * shard * 8,
                           ds.inputs.begin() + (r + 1) * shard * 8);
      std::vector<float> y(ds.targets.begin() + r * shard * 2,
                           ds.targets.begin() + (r + 1) * shard * 2);

      for (int s = 0; s < steps; ++s) {
        model.Forward(x, shard);
        model.Backward(x, y, shard);
        // The backward hook fires per gradient in reverse layer order —
        // communication starts while "earlier" layers are still pending.
        for (std::size_t t = names.size(); t-- > 0;) {
          worker.Push(names[t]);
        }
        worker.FlushIteration();
        const aiacc::Status st = worker.WaitIteration();
        AIACC_CHECK(st.ok());  // all gradients averaged in place
        model.SgdStep(lr);
      }

      if (r == 0) {
        const auto& stats = worker.stats();
        const float loss = dnn::Mlp::MseLoss(model.Forward(x, shard), y);
        std::printf("rank 0 after %d steps: loss %.5f\n", steps, loss);
        std::printf("protocol activity (rank 0):\n");
        std::printf("  iterations        : %llu\n",
                    static_cast<unsigned long long>(stats.iterations));
        std::printf("  sync rounds       : %llu (decentralized bit-vector "
                    "min-all-reduce)\n",
                    static_cast<unsigned long long>(stats.sync_rounds));
        std::printf("  all-reduce units  : %llu (packed to %zu B)\n",
                    static_cast<unsigned long long>(stats.units_reduced),
                    config.granularity_bytes);
        std::printf("  bytes reduced     : %llu\n",
                    static_cast<unsigned long long>(stats.bytes_reduced));
      }
    });
  }
  for (auto& t : ranks) t.join();
  std::printf("done.\n");
  return 0;
}
