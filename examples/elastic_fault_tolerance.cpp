// Production-features example (§IV "Other features and optimizations"):
//   1. checkpoint the training state, simulate a node failure, restart from
//      the last checkpoint and verify the run continues identically;
//   2. elastic deployment — a replacement worker joins and receives the
//      live parameters via broadcast instead of a cold restart;
//   3. corrupt-checkpoint detection (the restart path must refuse garbage).
//
// Run: ./elastic_fault_tolerance
#include <cstdio>
#include <cstdlib>

#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "core/perseus.h"
#include "dnn/mlp.h"

using namespace aiacc;

namespace {

core::Checkpoint Capture(dnn::Mlp& model, core::Optimizer& opt,
                         std::int64_t iteration, double lr) {
  core::Checkpoint ckpt;
  ckpt.iteration = iteration;
  ckpt.learning_rate = lr;
  for (auto t : model.ParameterTensors()) {
    ckpt.parameters.emplace_back(t.begin(), t.end());
  }
  ckpt.optimizer_state = opt.ExportState();
  return ckpt;
}

void Restore(const core::Checkpoint& ckpt, dnn::Mlp& model,
             core::Optimizer& opt) {
  auto tensors = model.ParameterTensors();
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    std::copy(ckpt.parameters[i].begin(), ckpt.parameters[i].end(),
              tensors[i].begin());
  }
  opt.ImportState(ckpt.optimizer_state);
}

void TrainSteps(dnn::Mlp& model, core::Optimizer& opt,
                const dnn::SyntheticDataset& ds, int steps, double lr) {
  for (int s = 0; s < steps; ++s) {
    model.Forward(ds.inputs, ds.num_samples);
    model.Backward(ds.inputs, ds.targets, ds.num_samples);
    std::vector<std::span<float>> params = model.ParameterTensors();
    auto grads = model.GradientTensors();
    std::vector<std::span<const float>> const_grads(grads.begin(),
                                                    grads.end());
    opt.Step(params, const_grads, lr);
  }
}

}  // namespace

int main() {
  const auto ds = dnn::MakeSyntheticDataset(64, 8, 2, 21);
  const double lr = 0.01;
  const std::string path = "/tmp/aiacc_example.ckpt";

  // --- 1. Checkpoint/restart -----------------------------------------
  std::printf("[1] fault tolerance: checkpoint at step 50, crash, restart\n");
  dnn::Mlp uninterrupted({8, 16, 2}, 42);
  core::AdamOptimizer full_opt;
  TrainSteps(uninterrupted, full_opt, ds, 100, lr);

  dnn::Mlp survivor({8, 16, 2}, 42);
  core::AdamOptimizer survivor_opt;
  TrainSteps(survivor, survivor_opt, ds, 50, lr);
  const auto ckpt = Capture(survivor, survivor_opt, 50, lr);
  if (auto st = core::SaveCheckpoint(ckpt, path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("    checkpoint written (%zu parameter tensors)\n",
              ckpt.parameters.size());

  // "Node failure": the process restarts with fresh (wrong) state...
  dnn::Mlp restarted({8, 16, 2}, 777);
  core::AdamOptimizer restarted_opt;
  // ...and restores from the last checkpoint.
  auto loaded = core::LoadCheckpoint(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Restore(*loaded, restarted, restarted_opt);
  TrainSteps(restarted, restarted_opt, ds, 50, lr);

  std::printf("    resumed run %s the uninterrupted run\n",
              restarted.ParametersEqual(uninterrupted, 0.0f) ? "MATCHES"
                                                             : "DIVERGES FROM");

  // --- 2. Elastic deployment ----------------------------------------
  std::printf("[2] elastic deployment: a replacement worker joins live\n");
  perseus::RunRanks(4, [&](perseus::Session& session) {
    // Ranks 0-2 are survivors holding trained parameters; rank 3 is new.
    dnn::Mlp model({8, 16, 2}, session.rank() < 3 ? 42u : 9999u);
    session.BroadcastParameters(model.ParameterTensors(), /*root=*/0);
    if (session.rank() == 3) {
      dnn::Mlp expected({8, 16, 2}, 42);
      std::printf("    new worker parameters %s the cluster's\n",
                  model.ParametersEqual(expected, 0.0f) ? "MATCH"
                                                        : "DO NOT MATCH");
    }
  });

  // --- 3. Corruption detection --------------------------------------
  std::printf("[3] corrupt checkpoint is rejected, not silently restored\n");
  auto bytes = core::SerializeCheckpoint(ckpt);
  bytes[bytes.size() / 2] ^= 0x5A;
  auto corrupt = core::DeserializeCheckpoint(bytes);
  std::printf("    deserialize(corrupt) -> %s\n",
              corrupt.ok() ? "OK (BUG!)"
                           : corrupt.status().ToString().c_str());

  std::remove(path.c_str());
  return 0;
}
