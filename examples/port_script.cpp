// The zero-involvement porting story (paper §IV): AIACC-Training converts
// user training code to its Perseus API automatically. This example runs
// the source-to-source translator on (a) a vanilla sequential PyTorch-style
// script and (b) a Horovod script, printing the rewritten sources and the
// audit trail of edits.
//
// Run: ./port_script [path-to-python-script]   (uses built-in samples if no
// path is given; with a path, prints the ported version of that file)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "porting/translator.h"

using namespace aiacc;

namespace {

constexpr const char* kSequentialSample = R"py(import torch
import torch.nn as nn
from torch.utils.data import DataLoader

model = ResNet50()
loader = DataLoader(train_dataset, batch_size=64, shuffle=True)
optimizer = torch.optim.SGD(model.parameters(), lr=0.1, momentum=0.9)

for epoch in range(90):
    for x, y in loader:
        optimizer.zero_grad()
        loss = criterion(model(x), y)
        loss.backward()
        optimizer.step()
    torch.save(model.state_dict(), 'checkpoint.pt')
)py";

constexpr const char* kHorovodSample = R"py(import torch
import horovod.torch as hvd

hvd.init()
torch.cuda.set_device(hvd.local_rank())
optimizer = hvd.DistributedOptimizer(optimizer)
)py";

void Report(const char* title, const porting::TranslationResult& result) {
  std::printf("==== %s ====\n", title);
  if (result.already_ported) {
    std::printf("(already uses Perseus — nothing to do)\n\n");
    return;
  }
  std::printf("edits applied:\n");
  for (const auto& edit : result.edits) {
    std::printf("  line %3d  %-20s %s\n", edit.line,
                porting::ToString(edit.kind).c_str(),
                edit.description.c_str());
  }
  std::printf("\nported source:\n---\n%s---\n\n", result.source.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    // Horovod scripts get the one-line port; everything else gets the full
    // sequential conversion.
    const bool is_horovod = source.find("horovod") != std::string::npos;
    Report(argv[1], is_horovod ? porting::PortHorovodScript(source)
                               : porting::PortSequentialScript(source));
    return 0;
  }
  Report("sequential PyTorch script -> Perseus DDL",
         porting::PortSequentialScript(kSequentialSample));
  Report("Horovod script -> Perseus (one-line port)",
         porting::PortHorovodScript(kHorovodSample));
  return 0;
}
