// Quickstart: port a sequential training loop to distributed data-parallel
// training with the Perseus API (AIACC-Training's Horovod-compatible
// interface, §IV).
//
// The porting story matches the paper's: the training loop is unchanged —
// you (1) create a session per worker, (2) broadcast initial parameters
// from rank 0, and (3) all-reduce gradients before each optimizer step.
// Here every rank is a thread and the gradients travel through the real
// multi-channel ring all-reduce.
//
// Run: ./quickstart [world_size]
#include <cstdio>
#include <cstdlib>

#include "common/sync.h"
#include "core/perseus.h"
#include "dnn/mlp.h"

using namespace aiacc;

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 4;
  const int steps = 40;
  const float lr = 0.2f;

  // Synthetic regression task, sharded across workers (data parallelism).
  const auto dataset = dnn::MakeSyntheticDataset(/*num_samples=*/128,
                                                 /*input_size=*/8,
                                                 /*output_size=*/2,
                                                 /*seed=*/17);
  const int shard = dataset.num_samples / world;

  std::printf("AIACC-Training quickstart: %d workers x %d samples/shard, "
              "%d steps\n", world, shard, steps);

  aiacc::common::Mutex print_mu{"quickstart-print"};
  perseus::RunRanks(world, [&](perseus::Session& session) {
    const int rank = session.rank();

    // Each worker builds the model; rank 0's initialization wins (Horovod's
    // broadcast_parameters — also AIACC's elastic-deployment path).
    dnn::Mlp model({8, 16, 2}, /*seed=*/1234 + rank);
    session.BroadcastParameters(model.ParameterTensors(), /*root=*/0);

    // This worker's data shard.
    std::vector<float> x(dataset.inputs.begin() + rank * shard * 8,
                         dataset.inputs.begin() + (rank + 1) * shard * 8);
    std::vector<float> y(dataset.targets.begin() + rank * shard * 2,
                         dataset.targets.begin() + (rank + 1) * shard * 2);

    for (int step = 0; step < steps; ++step) {
      auto pred = model.Forward(x, shard);
      const float loss = dnn::Mlp::MseLoss(pred, y);
      model.Backward(x, y, shard);

      // The one distributed call: averaged multi-streamed gradient
      // aggregation (with NaN debugging, §IV).
      auto nan_report = session.AllReduceGradients(
          model.GradientTensors(), /*num_channels=*/4);
      if (!nan_report.Clean()) {
        std::fprintf(stderr, "rank %d: NaN in gradients at step %d\n", rank,
                     step);
        return;
      }
      model.SgdStep(lr);

      if (rank == 0 && step % 10 == 0) {
        aiacc::common::MutexLock lock(print_mu);
        std::printf("  step %2d  loss %.5f\n", step, loss);
      }
    }

    if (rank == 0) {
      auto pred = model.Forward(x, shard);
      aiacc::common::MutexLock lock(print_mu);
      std::printf("final shard-0 loss: %.5f\n",
                  dnn::Mlp::MseLoss(pred, y));
    }
  });

  std::printf("done: all %d replicas trained in lockstep.\n", world);
  return 0;
}
