// Domain example: planning a large CV training job on the simulated GPU
// cloud. Given a model, a cluster size and a batch size, this example
// (1) auto-tunes AIACC's communication parameters during a warm-up phase,
// (2) reports the tuned configuration and steady-state throughput against
// Horovod/DDP/BytePS on identical hardware, and (3) prints the per-NIC
// traffic and stream concurrency the engine actually used — the analysis a
// capacity planner runs before renting 32 instances. An optional fourth
// argument writes a chrome://tracing execution trace of the tuned run.
//
// Run: ./cv_cluster_training [model] [gpus] [batch] [trace.json]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"
#include "core/aiacc_engine.h"
#include "dnn/zoo.h"
#include "trainer/harness.h"

using namespace aiacc;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "resnet50";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 64;
  const int batch = argc > 3 ? std::atoi(argv[3]) : 64;

  std::printf("Planning %s on %d GPUs (batch %d/GPU, 8 GPUs/host, 30 Gbps "
              "TCP)\n\n", model.c_str(), gpus, batch);

  // 1. Auto-tuned AIACC deployment.
  trainer::RunSpec spec;
  spec.model_name = model;
  spec.topology = trainer::MakeTopology(gpus);
  spec.engine = trainer::EngineKind::kAiaccAutotuned;
  spec.batch_per_gpu = batch;
  spec.tune_budget = 48;
  const auto tuned = trainer::Run(spec);

  std::printf("auto-tuned configuration: %s\n",
              tuned.chosen_config.ToString().c_str());
  if (tuned.tuning) {
    std::printf("  warm-up budget: %zu iterations (these iterations also "
                "trained the model)\n", tuned.tuning->history.size());
    for (std::size_t t = 0; t < tuned.tuning->searcher_names.size(); ++t) {
      std::printf("    %-9s proposed %d iterations\n",
                  tuned.tuning->searcher_names[t].c_str(),
                  tuned.tuning->searcher_usage[t]);
    }
  }

  // 2. Cross-engine comparison.
  std::printf("\nsteady-state throughput:\n");
  TablePrinter table({"engine", "samples/s", "per-GPU", "vs AIACC"});
  table.AddRow({"aiacc (tuned)", FormatDouble(tuned.throughput, 0),
                FormatDouble(tuned.per_gpu_throughput, 1), "1.00"});
  for (auto kind : {trainer::EngineKind::kHorovod,
                    trainer::EngineKind::kPytorchDdp,
                    trainer::EngineKind::kByteps}) {
    auto baseline_spec = spec;
    baseline_spec.engine = kind;
    const auto r = trainer::Run(baseline_spec);
    table.AddRow({trainer::ToString(kind), FormatDouble(r.throughput, 0),
                  FormatDouble(r.per_gpu_throughput, 1),
                  FormatDouble(r.throughput / tuned.throughput, 2)});
  }
  table.Print();

  // 3. What the engine did per iteration.
  const auto& stats = tuned.last_iteration;
  std::printf("\nper-iteration communication profile (AIACC):\n");
  std::printf("  iteration time           : %.2f ms\n",
              tuned.iteration_time * 1e3);
  std::printf("  sync rounds              : %d (decentralized bit-vector)\n",
              stats.sync_rounds);
  std::printf("  all-reduce units         : %d\n", stats.allreduce_units);
  std::printf("  peak concurrent streams  : %d\n",
              stats.max_concurrent_streams);
  std::printf("  traffic per NIC          : %s\n",
              FormatBytes(stats.comm_bytes_per_nic).c_str());

  // 4. Optional execution trace of a few tuned iterations.
  if (argc > 4) {
    sim::Tracer tracer;
    auto traced = spec;
    traced.engine = trainer::EngineKind::kAiacc;
    traced.aiacc_config = tuned.chosen_config;
    // Rebuild a small deployment by hand so the tracer can be attached.
    dnn::ModelDescriptor model_desc = dnn::MakeModelByName(traced.model_name);
    sim::Engine engine;
    net::CloudFabric fabric(engine, traced.topology, traced.fabric_params);
    collective::SimCollectives collectives(fabric);
    core::WorkloadSetup setup;
    setup.fabric = &fabric;
    setup.collectives = &collectives;
    setup.model = &model_desc;
    setup.batch_per_gpu = traced.batch_per_gpu;
    setup.tracer = &tracer;
    core::AiaccEngine ddl(setup, traced.aiacc_config);
    (void)ddl.RunIterations(3);
    if (auto st = tracer.WriteTo(argv[4]); st.ok()) {
      std::printf("\nexecution trace (3 iterations) written to %s — open "
                  "in chrome://tracing or Perfetto\n", argv[4]);
    } else {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  return 0;
}
